"""Deterministic-cache tiers, plan fingerprints and the delta protocol.

Covers the incremental materialization pipeline's engine-level contracts:

* ``_restamp`` — deterministic relations served from cache when
  replenishment widens ``positions`` (and when a cross-query hit crosses
  aligned/tail modes);
* :class:`SessionDetCache` — cross-query hits keyed by structural plan
  fingerprint, invalidation on catalog mutation, the ``det_cache``
  option knob end to end through ``Session``;
* ``positions_for`` — ``position_offset`` and an explicit
  ``position_plan`` are mutually exclusive;
* signature-batched ``Instantiate`` — one ``validate_params`` call per
  distinct parameter signature, batched gathers bit-identical to the
  per-row path, and the delta merge bit-identical to a full rebuild.
"""

import numpy as np
import pytest

from repro.engine.det_cache import (
    ContextDetCache, NullDetCache, SessionDetCache, make_det_cache)
from repro.engine.errors import EngineError
from repro.engine.expressions import col, lit
from repro.engine.operators import (
    ExecutionContext, Instantiate, Scan, Seed, Select, random_table_pipeline)
from repro.engine.options import ExecutionOptions
from repro.engine.random_table import RandomColumnSpec, RandomTableSpec
from repro.engine.table import Catalog, Table
from repro.sql import Session
from repro.sql.parser import parse
from repro.sql.planner import compile_select
from repro.vg.builtin import NORMAL
from repro.vg.streams import gather_stream_windows


def _catalog(rows=6):
    catalog = Catalog()
    catalog.add_table(Table("means", {
        "CID": np.arange(rows), "m": np.linspace(1.0, 3.0, rows)}))
    return catalog


def _losses_spec():
    return RandomTableSpec(
        name="Losses", parameter_table="means", vg=NORMAL,
        vg_params=(col("m"), lit(1.0)),
        random_columns=(RandomColumnSpec("val"),),
        passthrough_columns=("CID",))


class TestRestampOnWidening:
    def test_det_cache_restamped_when_replenishment_widens(self):
        """The Sec. 9 path: a replenishment re-run widens ``positions``;
        cached deterministic relations must be served with the new width
        without re-executing the subtree."""
        catalog = _catalog()
        plan = random_table_pipeline(_losses_spec())
        context = ExecutionContext(catalog, positions=8, aligned=False)
        first = plan.execute(context)
        assert first.positions == 8
        executions = context.node_executions

        context.positions = 20
        context.position_plan = {
            handle: np.arange(20, dtype=np.int64) for handle in context.seeds}
        widened = plan.execute(context)
        assert widened.positions == 20
        # Only Instantiate and the Project above it re-ran; Scan/Seed came
        # restamped from the cache.
        assert context.node_executions == executions + 2
        np.testing.assert_array_equal(widened.det_columns["CID"],
                                      first.det_columns["CID"])

    def test_restamp_crosses_aligned_modes(self):
        """A session cache hit may serve a tail-mode (aligned=False) plan
        from a Monte Carlo run; the restamped metadata must follow."""
        catalog = _catalog()
        cache = SessionDetCache()
        scan = Scan("means")
        mc = ExecutionContext(catalog, positions=4, aligned=True,
                              det_cache=cache)
        relation = scan.execute(mc)
        assert relation.aligned is True
        tail = ExecutionContext(catalog, positions=16, aligned=False,
                                det_cache=cache)
        served = scan.execute(tail)
        assert cache.hits >= 1
        assert served.aligned is False and served.positions == 16
        np.testing.assert_array_equal(served.det_columns["m"],
                                      relation.det_columns["m"])

    def test_seed_label_registered_on_cross_query_cache_hit(self):
        """A cached Seed subtree must still arm the label-collision guard
        in the fresh context — a later Seed whose label hashes to the
        same id has to be rejected, not silently share streams."""
        from repro.engine.seeds import label_id_of

        catalog = _catalog()
        cache = SessionDetCache()
        seed = Seed(Scan("means"), label="L")
        first = ExecutionContext(catalog, positions=4, aligned=True,
                                 det_cache=cache)
        seed.execute(first)
        second = ExecutionContext(catalog, positions=4, aligned=True,
                                  det_cache=cache)
        executions = second.node_executions
        seed.execute(second)
        assert second.node_executions == executions  # served from cache
        assert label_id_of("L") in second._labels    # guard still armed


class TestSessionDetCache:
    def _session(self, **opts):
        session = Session(base_seed=7, tail_budget=300, window=200,
                          options=ExecutionOptions(**opts) if opts else None)
        session.add_table("means", {
            "CID": np.arange(12), "m": np.linspace(1.0, 3.0, 12)})
        session.execute("""
            CREATE TABLE Losses (CID, val) AS
            FOR EACH CID IN means
            WITH myVal AS Normal(VALUES(m, 1.0))
            SELECT CID, myVal.* FROM myVal
        """)
        return session

    QUERY = """
        SELECT SUM(val) AS loss FROM Losses
        WITH RESULTDISTRIBUTION MONTECARLO(30)
    """

    def test_cross_query_hits(self):
        session = self._session()
        session.execute(self.QUERY)
        misses = session.det_cache.misses
        assert len(session.det_cache) > 0
        session.execute(self.QUERY)
        # A freshly compiled, structurally identical plan hits the entries
        # the first execution stored (fingerprint keying, not node ids).
        assert session.det_cache.hits > 0
        assert session.det_cache.misses == misses

    def test_results_unchanged_by_cache_hits(self):
        session = self._session()
        first = session.execute(self.QUERY)
        second = session.execute(self.QUERY)
        np.testing.assert_array_equal(
            first.distributions.distribution("loss").samples,
            second.distributions.distribution("loss").samples)

    def test_catalog_mutation_invalidates(self):
        session = self._session()
        session.execute(self.QUERY)
        assert len(session.det_cache) > 0
        session.add_table("extra", {"x": [1.0]})
        session.execute(self.QUERY)
        assert session.det_cache.invalidations >= 1

    def test_ftable_registration_invalidates(self):
        session = self._session()
        query = """
            SELECT SUM(val) AS loss FROM Losses
            WITH RESULTDISTRIBUTION MONTECARLO(25)
            DOMAIN loss >= QUANTILE(0.9)
            FREQUENCYTABLE loss
        """
        session.execute(query)   # registers FTABLE -> catalog mutation
        version = session.catalog.version
        session.execute(self.QUERY)
        assert session.catalog.version == version  # SELECT never mutates
        session.execute(query)
        assert session.catalog.version > version

    def test_det_cache_off_mode(self):
        session = self._session(det_cache="off")
        session.execute(self.QUERY)
        assert len(session.det_cache) == 0

    def test_det_cache_context_mode(self):
        session = self._session(det_cache="context")
        session.execute(self.QUERY)
        assert len(session.det_cache) == 0  # session cache never consulted

    @pytest.mark.parametrize("mode", ["session", "context", "off"])
    def test_modes_bit_identical(self, mode):
        baseline = self._session().execute(self.QUERY)
        other = self._session(det_cache=mode).execute(self.QUERY)
        np.testing.assert_array_equal(
            baseline.distributions.distribution("loss").samples,
            other.distributions.distribution("loss").samples)

    def test_make_det_cache(self):
        assert isinstance(make_det_cache("context"), ContextDetCache)
        assert isinstance(make_det_cache("off"), NullDetCache)
        with pytest.raises(ValueError):
            make_det_cache("session")

    def test_option_validation(self):
        with pytest.raises(ValueError, match="det_cache"):
            ExecutionOptions(det_cache="warp")
        with pytest.raises(ValueError, match="replenishment"):
            ExecutionOptions(replenishment="sometimes")


class TestFingerprints:
    def test_recompiled_plans_share_fingerprints(self):
        session = TestSessionDetCache()._session()
        statement = parse(TestSessionDetCache.QUERY)
        first = compile_select(statement, session.catalog, tail_mode=False)
        second = compile_select(parse(TestSessionDetCache.QUERY),
                                session.catalog, tail_mode=False)
        assert first.plan.node_id != second.plan.node_id
        assert first.plan.fingerprint() == second.plan.fingerprint()

    def test_structurally_different_plans_differ(self):
        catalog = _catalog()
        scan_a = Select(Scan("means"), col("CID") < lit(3))
        scan_b = Select(Scan("means"), col("CID") < lit(4))
        assert scan_a.fingerprint() != scan_b.fingerprint()
        assert Scan("means").fingerprint() != Scan("means", "e.").fingerprint()
        assert (Seed(Scan("means"), "a").fingerprint()
                != Seed(Scan("means"), "b").fingerprint())


class TestPositionPlanOffsetExclusion:
    def test_offset_with_position_plan_raises(self):
        catalog = _catalog()
        context = ExecutionContext(catalog, positions=4, aligned=True,
                                   position_offset=8)
        context.position_plan = {7: np.arange(4, dtype=np.int64)}
        with pytest.raises(EngineError, match="mutually exclusive"):
            context.positions_for(7)
        # Even handles absent from the plan must refuse: the offset would
        # shift them while planned seeds stay pinned — silent misalignment.
        with pytest.raises(EngineError, match="mutually exclusive"):
            context.positions_for(99)

    def test_offset_alone_still_works(self):
        catalog = _catalog()
        context = ExecutionContext(catalog, positions=4, aligned=True,
                                   position_offset=8)
        np.testing.assert_array_equal(context.positions_for(0),
                                      np.arange(8, 12))


class _CountingNormal(NORMAL.__class__):
    def __init__(self):
        super().__init__()
        self.validate_calls = 0

    def validate_params(self, params):
        self.validate_calls += 1
        return super().validate_params(params)


class TestSignatureBatchedInstantiate:
    def test_validate_once_per_signature(self):
        catalog = Catalog()
        catalog.add_table(Table("params", {
            "k": np.arange(9), "m": [1.0, 1.0, 1.0, 2.0, 2.0, 2.0,
                                     3.0, 3.0, 3.0]}))
        vg = _CountingNormal()
        seed = Seed(Scan("params"), label="L")
        node = Instantiate(seed, vg, [col("m"), lit(1.0)], [("val", 0)],
                           seed.handle_column)
        node.execute(ExecutionContext(catalog, positions=6, aligned=True))
        # 9 rows but only 3 distinct (m, 1.0) signatures.
        assert vg.validate_calls == 3

    def test_batched_gather_matches_per_row(self):
        catalog = _catalog(rows=8)
        plan = random_table_pipeline(_losses_spec())
        batched_context = ExecutionContext(catalog, positions=32,
                                           aligned=True)
        batched = plan.execute(batched_context)
        # Force the per-row path: a non-empty window_bases (all zero, so
        # the same positions materialize) routes _run through
        # _gather_per_row — the batched gather is purely an execution
        # strategy and must give the same matrix.
        ctx2 = ExecutionContext(catalog, positions=32, aligned=True)
        ctx2.window_bases = dict.fromkeys(batched_context.seeds, 0)
        probe = random_table_pipeline(_losses_spec()).execute(ctx2)
        np.testing.assert_array_equal(batched.rand_columns["val"].values,
                                      probe.rand_columns["val"].values)

    def test_gather_stream_windows_matches_values_at(self):
        catalog = _catalog(rows=5)
        plan = random_table_pipeline(_losses_spec())
        context = ExecutionContext(catalog, positions=16, aligned=True)
        relation = plan.execute(context)
        positions = np.arange(16, dtype=np.int64)
        for row, handle in enumerate(
                relation.rand_columns["val"].seed_handles):
            info = context.seeds[int(handle)]
            np.testing.assert_array_equal(
                relation.rand_columns["val"].values[row],
                info.values_at(positions, 0))

    def test_gather_stream_windows_rejects_descending_chunks(self):
        with pytest.raises(ValueError, match="ascending"):
            gather_stream_windows(
                np.array([5, 1]), 4, [lambda cid: np.zeros(4)])

    def test_gather_stream_windows_within_chunk_disorder_ok(self):
        out = gather_stream_windows(
            np.array([3, 1, 2]), 4,
            [lambda cid: np.arange(4, dtype=np.float64)])
        np.testing.assert_array_equal(out, [[3.0, 1.0, 2.0]])


class TestDeltaMergeEquivalence:
    def _prepare(self, width=12, fresh=24):
        catalog = _catalog(rows=5)
        plan = random_table_pipeline(_losses_spec())
        context = ExecutionContext(catalog, positions=width, aligned=False)
        context.delta_tracking = True
        plan.execute(context)
        # Build a replenishment-shaped plan: keep a few "assigned"
        # positions per seed, then extend past the old window.
        plans = {}
        for index, handle in enumerate(sorted(context.seeds)):
            assigned = np.array([0, 2 + index], dtype=np.int64)
            tail = np.arange(width + index, width + index + fresh,
                             dtype=np.int64)
            plans[handle] = np.concatenate([assigned, tail])
        target = max(len(p) for p in plans.values())
        for handle, p in plans.items():
            extra = target - len(p)
            if extra:
                plans[handle] = np.concatenate([
                    p, np.arange(p[-1] + 1, p[-1] + 1 + extra,
                                 dtype=np.int64)])
        context.positions = target
        context.position_plan = plans
        return catalog, plan, context

    def test_delta_merge_bit_identical_to_full_rebuild(self):
        catalog, plan, context = self._prepare()
        context.delta_mode = True
        merged = plan.execute(context)
        assert context.delta_runs == 1

        rebuilt_context = ExecutionContext(
            catalog, positions=context.positions, aligned=False)
        rebuilt_context.position_plan = dict(context.position_plan)
        rebuilt = random_table_pipeline(_losses_spec()).execute(
            rebuilt_context)
        np.testing.assert_array_equal(merged.rand_columns["val"].values,
                                      rebuilt.rand_columns["val"].values)
        np.testing.assert_array_equal(merged.rand_columns["val"].bases,
                                      rebuilt.rand_columns["val"].bases)

    def test_delta_rejected_when_rows_change(self):
        """A merge baseline with a different row set must be discarded."""
        catalog, plan, context = self._prepare()
        context.delta_mode = True
        # Tamper with the recorded baseline: wrong handle order.
        for materialization in context.materialized.values():
            materialization.handles = materialization.handles[::-1].copy()
        merged = plan.execute(context)
        assert context.delta_runs == 0  # fell back to a full gather
        rebuilt_context = ExecutionContext(
            catalog, positions=context.positions, aligned=False)
        rebuilt_context.position_plan = dict(context.position_plan)
        rebuilt = random_table_pipeline(_losses_spec()).execute(
            rebuilt_context)
        np.testing.assert_array_equal(merged.rand_columns["val"].values,
                                      rebuilt.rand_columns["val"].values)
