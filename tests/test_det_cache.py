"""Deterministic-cache tiers, plan fingerprints and the delta protocol.

Covers the incremental materialization pipeline's engine-level contracts:

* ``_restamp`` — deterministic relations served from cache when
  replenishment widens ``positions`` (and when a cross-query hit crosses
  aligned/tail modes);
* :class:`SessionDetCache` — cross-query hits keyed by structural plan
  fingerprint, invalidation on catalog mutation, the ``det_cache``
  option knob end to end through ``Session``;
* ``positions_for`` — ``position_offset`` and an explicit
  ``position_plan`` are mutually exclusive;
* signature-batched ``Instantiate`` — one ``validate_params`` call per
  distinct parameter signature, batched gathers bit-identical to the
  per-row path, and the delta merge bit-identical to a full rebuild.
"""

import numpy as np
import pytest

from repro.engine.det_cache import (
    ContextDetCache, NullDetCache, SessionDetCache, make_det_cache)
from repro.engine.errors import EngineError
from repro.engine.expressions import col, lit
from repro.engine.operators import (
    ExecutionContext, Instantiate, Join, Project, Scan, Seed, Select,
    random_table_pipeline)
from repro.engine.options import ExecutionOptions
from repro.engine.random_table import RandomColumnSpec, RandomTableSpec
from repro.engine.table import Catalog, Table
from repro.sql import Session
from repro.sql.parser import parse
from repro.sql.planner import compile_select
from repro.vg.builtin import NORMAL
from repro.vg.streams import gather_stream_windows


def _catalog(rows=6):
    catalog = Catalog()
    catalog.add_table(Table("means", {
        "CID": np.arange(rows), "m": np.linspace(1.0, 3.0, rows)}))
    return catalog


def _losses_spec():
    return RandomTableSpec(
        name="Losses", parameter_table="means", vg=NORMAL,
        vg_params=(col("m"), lit(1.0)),
        random_columns=(RandomColumnSpec("val"),),
        passthrough_columns=("CID",))


class TestRestampOnWidening:
    def test_det_cache_restamped_when_replenishment_widens(self):
        """The Sec. 9 path: a replenishment re-run widens ``positions``;
        cached deterministic relations must be served with the new width
        without re-executing the subtree."""
        catalog = _catalog()
        plan = random_table_pipeline(_losses_spec())
        context = ExecutionContext(catalog, positions=8, aligned=False)
        first = plan.execute(context)
        assert first.positions == 8
        executions = context.node_executions

        context.positions = 20
        context.position_plan = {
            handle: np.arange(20, dtype=np.int64) for handle in context.seeds}
        widened = plan.execute(context)
        assert widened.positions == 20
        # Only Instantiate and the Project above it re-ran; Scan/Seed came
        # restamped from the cache.
        assert context.node_executions == executions + 2
        np.testing.assert_array_equal(widened.det_columns["CID"],
                                      first.det_columns["CID"])

    def test_restamp_crosses_aligned_modes(self):
        """A session cache hit may serve a tail-mode (aligned=False) plan
        from a Monte Carlo run; the restamped metadata must follow."""
        catalog = _catalog()
        cache = SessionDetCache()
        scan = Scan("means")
        mc = ExecutionContext(catalog, positions=4, aligned=True,
                              det_cache=cache)
        relation = scan.execute(mc)
        assert relation.aligned is True
        tail = ExecutionContext(catalog, positions=16, aligned=False,
                                det_cache=cache)
        served = scan.execute(tail)
        assert cache.hits >= 1
        assert served.aligned is False and served.positions == 16
        np.testing.assert_array_equal(served.det_columns["m"],
                                      relation.det_columns["m"])

    def test_seed_label_registered_on_cross_query_cache_hit(self):
        """A cached Seed subtree must still arm the label-collision guard
        in the fresh context — a later Seed whose label hashes to the
        same id has to be rejected, not silently share streams."""
        from repro.engine.seeds import label_id_of

        catalog = _catalog()
        cache = SessionDetCache()
        seed = Seed(Scan("means"), label="L")
        first = ExecutionContext(catalog, positions=4, aligned=True,
                                 det_cache=cache)
        seed.execute(first)
        second = ExecutionContext(catalog, positions=4, aligned=True,
                                  det_cache=cache)
        executions = second.node_executions
        seed.execute(second)
        assert second.node_executions == executions  # served from cache
        assert label_id_of("L") in second._labels    # guard still armed


class TestSessionDetCache:
    def _session(self, **opts):
        session = Session(base_seed=7, tail_budget=300, window=200,
                          options=ExecutionOptions(**opts) if opts else None)
        session.add_table("means", {
            "CID": np.arange(12), "m": np.linspace(1.0, 3.0, 12)})
        session.execute("""
            CREATE TABLE Losses (CID, val) AS
            FOR EACH CID IN means
            WITH myVal AS Normal(VALUES(m, 1.0))
            SELECT CID, myVal.* FROM myVal
        """)
        return session

    QUERY = """
        SELECT SUM(val) AS loss FROM Losses
        WITH RESULTDISTRIBUTION MONTECARLO(30)
    """

    def test_cross_query_hits(self):
        session = self._session()
        session.execute(self.QUERY)
        misses = session.det_cache.misses
        assert len(session.det_cache) > 0
        session.execute(self.QUERY)
        # A freshly compiled, structurally identical plan hits the entries
        # the first execution stored (fingerprint keying, not node ids).
        assert session.det_cache.hits > 0
        assert session.det_cache.misses == misses

    def test_results_unchanged_by_cache_hits(self):
        session = self._session()
        first = session.execute(self.QUERY)
        second = session.execute(self.QUERY)
        np.testing.assert_array_equal(
            first.distributions.distribution("loss").samples,
            second.distributions.distribution("loss").samples)

    def test_dependent_mutation_invalidates(self):
        """Rewriting a table a cached subtree scans drops exactly the
        dependent entries (table keying, the default)."""
        session = self._session(det_cache_keying="table")
        session.execute(self.QUERY)
        assert len(session.det_cache) > 0
        session.add_table("means", {
            "CID": np.arange(12), "m": np.linspace(2.0, 4.0, 12)})
        session.execute(self.QUERY)
        assert session.det_cache.partial_invalidations >= 1

    def test_unrelated_mutation_survives_table_keying(self):
        """The point of table-granular keying: DDL on a disjoint table
        leaves cached entries — and their arrays — untouched."""
        session = self._session(det_cache_keying="table")
        session.execute(self.QUERY)
        entries = len(session.det_cache)
        misses = session.det_cache.misses
        session.add_table("extra", {"x": [1.0]})
        session.execute(self.QUERY)
        assert session.det_cache.misses == misses  # every subtree served
        assert session.det_cache.invalidations == 0
        assert session.det_cache.partial_invalidations == 0
        assert len(session.det_cache) == entries

    def test_catalog_keying_drops_everything(self):
        """keying="catalog" reproduces the coarse protocol: any mutation
        (even of an unrelated table) clears the whole cache."""
        session = self._session(det_cache_keying="catalog")
        session.execute(self.QUERY)
        assert len(session.det_cache) > 0
        session.add_table("extra", {"x": [1.0]})
        session.execute(self.QUERY)
        assert session.det_cache.invalidations >= 1

    def test_ftable_registration_invalidates(self):
        session = self._session()
        query = """
            SELECT SUM(val) AS loss FROM Losses
            WITH RESULTDISTRIBUTION MONTECARLO(25)
            DOMAIN loss >= QUANTILE(0.9)
            FREQUENCYTABLE loss
        """
        session.execute(query)   # registers FTABLE -> catalog mutation
        version = session.catalog.version
        session.execute(self.QUERY)
        assert session.catalog.version == version  # SELECT never mutates
        session.execute(query)
        assert session.catalog.version > version

    def test_det_cache_off_mode(self):
        session = self._session(det_cache="off")
        session.execute(self.QUERY)
        assert len(session.det_cache) == 0

    def test_det_cache_context_mode(self):
        session = self._session(det_cache="context")
        session.execute(self.QUERY)
        assert len(session.det_cache) == 0  # session cache never consulted

    @pytest.mark.parametrize("mode", ["session", "context", "off"])
    def test_modes_bit_identical(self, mode):
        baseline = self._session().execute(self.QUERY)
        other = self._session(det_cache=mode).execute(self.QUERY)
        np.testing.assert_array_equal(
            baseline.distributions.distribution("loss").samples,
            other.distributions.distribution("loss").samples)

    def test_make_det_cache(self):
        assert isinstance(make_det_cache("context"), ContextDetCache)
        assert isinstance(make_det_cache("off"), NullDetCache)
        with pytest.raises(ValueError):
            make_det_cache("session")

    def test_option_validation(self):
        with pytest.raises(ValueError, match="det_cache"):
            ExecutionOptions(det_cache="warp")
        with pytest.raises(ValueError, match="replenishment"):
            ExecutionOptions(replenishment="sometimes")


class TestBaseTables:
    def test_scan_and_combinators_union(self):
        assert Scan("A").base_tables() == frozenset({"a"})
        join = Join(Scan("A"), Scan("B", "b."), ["k"], ["b.k"])
        assert join.base_tables() == frozenset({"a", "b"})
        assert Select(join, col("k") < lit(1)).base_tables() == \
            frozenset({"a", "b"})

    def test_random_pipeline_depends_on_spec_and_parameter_table(self):
        plan = random_table_pipeline(_losses_spec())
        assert plan.base_tables() == frozenset({"means", "losses"})

    def test_memoized(self):
        node = Select(Scan("A"), col("k") < lit(1))
        assert node.base_tables() is node.base_tables()


class TestCrossInvalidationMatrix:
    """Mutations hit exactly the entries that depend on the touched name."""

    def _catalog(self):
        catalog = Catalog()
        catalog.add_table(Table("a", {
            "k": np.arange(4), "v": np.linspace(0.0, 1.0, 4)}))
        catalog.add_table(Table("b", {
            "k2": np.arange(3), "w": np.linspace(5.0, 6.0, 3)}))
        return catalog

    def _context(self, catalog, cache):
        return ExecutionContext(catalog, positions=4, aligned=True,
                                det_cache=cache)

    def test_mutating_a_leaves_b_entries_identical(self):
        catalog = self._catalog()
        cache = SessionDetCache()
        scan_b = Scan("b")
        served = scan_b.execute(self._context(catalog, cache))
        catalog.add_table(Table("a", {"k": [0], "v": [9.0]}))
        again = scan_b.execute(self._context(catalog, cache))
        assert cache.partial_invalidations == 0
        assert cache.misses == 1  # only the initial fill
        # The very same arrays, not recomputed copies.
        assert again.det_columns["w"] is served.det_columns["w"]

    def test_mutating_a_drops_only_a_entries(self):
        catalog = self._catalog()
        cache = SessionDetCache()
        scan_a, scan_b = Scan("a"), Scan("b")
        scan_a.execute(self._context(catalog, cache))
        scan_b.execute(self._context(catalog, cache))
        catalog.add_table(Table("a", {"k": [0], "v": [9.0]}))
        refreshed = scan_a.execute(self._context(catalog, cache))
        scan_b.execute(self._context(catalog, cache))
        assert cache.partial_invalidations == 1
        np.testing.assert_array_equal(refreshed.det_columns["v"], [9.0])

    def test_drop_and_readd_same_name_invalidates(self):
        """Re-adding even identical contents must invalidate: the
        per-name version is monotone across drop/re-add."""
        catalog = self._catalog()
        cache = SessionDetCache()
        scan = Scan("a")
        scan.execute(self._context(catalog, cache))
        catalog.drop("a")
        catalog.add_table(Table("a", {
            "k": np.arange(4), "v": np.linspace(0.0, 1.0, 4)}))
        misses = cache.misses
        scan.execute(self._context(catalog, cache))
        assert cache.partial_invalidations == 1
        assert cache.misses == misses + 1

    def test_different_catalog_clears_everything(self):
        catalog = self._catalog()
        cache = SessionDetCache()
        scan = Scan("a")
        scan.execute(self._context(catalog, cache))
        other = self._catalog()
        scan.execute(self._context(other, cache))
        assert cache.invalidations == 1


class TestAppendSpliceRefresh:
    """Append-only growth refreshes cached det subtrees in place."""

    def _catalog(self):
        catalog = Catalog()
        catalog.add_table(Table("ledger", {
            "acct": np.arange(6) % 3,
            "amount": np.linspace(1.0, 2.0, 6)}))
        catalog.add_table(Table("accounts", {
            "acct2": np.arange(3), "region": np.array([0, 1, 0])}))
        return catalog

    def _context(self, catalog, cache=None):
        return ExecutionContext(catalog, positions=4, aligned=True,
                                det_cache=cache)

    def _pipeline(self):
        join = Join(Scan("ledger"), Scan("accounts"), ["acct"], ["acct2"])
        select = Select(join, col("region") < lit(1))
        return Project(select, outputs=(("double", col("amount") + col("amount")),),
                       keep=["acct", "amount"])

    def test_scan_splice_matches_fresh_run(self):
        catalog = self._catalog()
        cache = SessionDetCache()
        scan = Scan("ledger")
        scan.execute(self._context(catalog, cache))
        catalog.append("ledger", {"acct": [7, 8], "amount": [9.0, 8.0]})
        served = scan.execute(self._context(catalog, cache))
        assert cache.append_refreshes == 1
        assert cache.misses == 1  # refresh is not a recomputation
        fresh = Scan("ledger").execute(self._context(catalog))
        np.testing.assert_array_equal(served.det_columns["amount"],
                                      fresh.det_columns["amount"])
        np.testing.assert_array_equal(served.det_columns["acct"],
                                      fresh.det_columns["acct"])

    def test_seed_splice_matches_fresh_handles(self):
        catalog = self._catalog()
        cache = SessionDetCache()
        seed = Seed(Scan("ledger"), label="L")
        seed.execute(self._context(catalog, cache))
        catalog.append("ledger", {"acct": [5], "amount": [3.0]})
        served = seed.execute(self._context(catalog, cache))
        assert cache.append_refreshes >= 1
        fresh = Seed(Scan("ledger"), label="L").execute(
            self._context(catalog))
        np.testing.assert_array_equal(served.det_columns["L#seed"],
                                      fresh.det_columns["L#seed"])

    def test_join_pipeline_splice_matches_fresh_run(self):
        catalog = self._catalog()
        cache = SessionDetCache()
        plan = self._pipeline()
        plan.execute(self._context(catalog, cache))
        misses = cache.misses
        # acct 0 and 1 join (region 0 survives the Select, 1 does not);
        # acct 5 has no accounts match at all.
        catalog.append("ledger", {
            "acct": [0, 1, 5], "amount": [9.0, 8.0, 7.0]})
        served = plan.execute(self._context(catalog, cache))
        assert cache.append_refreshes >= 1
        assert cache.misses == misses  # nothing recomputed
        fresh = self._pipeline().execute(self._context(catalog))
        for name in ("acct", "amount", "double"):
            np.testing.assert_array_equal(served.det_columns[name],
                                          fresh.det_columns[name])

    def test_join_build_side_append_falls_back_to_recompute(self):
        catalog = self._catalog()
        cache = SessionDetCache()
        plan = self._pipeline()
        plan.execute(self._context(catalog, cache))
        catalog.append("accounts", {"acct2": [7], "region": [0]})
        served = plan.execute(self._context(catalog, cache))
        # The join is not splicable when its build side moved; dependent
        # entries drop and recompute (the accounts Scan itself splices).
        assert cache.partial_invalidations >= 1
        fresh = self._pipeline().execute(self._context(catalog))
        for name in ("acct", "amount", "double"):
            np.testing.assert_array_equal(served.det_columns[name],
                                          fresh.det_columns[name])

    def test_rewrite_after_append_recomputes(self):
        catalog = self._catalog()
        cache = SessionDetCache()
        scan = Scan("ledger")
        scan.execute(self._context(catalog, cache))
        catalog.append("ledger", {"acct": [7], "amount": [9.0]})
        catalog.add_table(Table("ledger", {
            "acct": [1], "amount": [4.0]}))  # rewrite truncates journal
        served = scan.execute(self._context(catalog, cache))
        assert cache.append_refreshes == 0
        assert cache.partial_invalidations == 1
        np.testing.assert_array_equal(served.det_columns["amount"], [4.0])

    def test_session_append_bit_identical_to_fresh_session(self):
        """End to end: MC samples after Session.append equal a fresh
        session built directly on the grown table."""
        query = TestSessionDetCache.QUERY
        session = TestSessionDetCache()._session(det_cache_keying="table")
        session.execute(query)
        session.append("means", {"CID": [12, 13], "m": [3.2, 3.4]})
        grown = session.execute(query)
        assert session.cache_stats()["append_refreshes"] >= 1

        baseline = Session(base_seed=7, tail_budget=300, window=200)
        baseline.add_table("means", {
            "CID": np.arange(14),
            "m": np.concatenate([np.linspace(1.0, 3.0, 12), [3.2, 3.4]])})
        baseline.execute("""
            CREATE TABLE Losses (CID, val) AS
            FOR EACH CID IN means
            WITH myVal AS Normal(VALUES(m, 1.0))
            SELECT CID, myVal.* FROM myVal
        """)
        expected = baseline.execute(query)
        np.testing.assert_array_equal(
            grown.distributions.distribution("loss").samples,
            expected.distributions.distribution("loss").samples)


class TestFingerprints:
    def test_recompiled_plans_share_fingerprints(self):
        session = TestSessionDetCache()._session()
        statement = parse(TestSessionDetCache.QUERY)
        first = compile_select(statement, session.catalog, tail_mode=False)
        second = compile_select(parse(TestSessionDetCache.QUERY),
                                session.catalog, tail_mode=False)
        assert first.plan.node_id != second.plan.node_id
        assert first.plan.fingerprint() == second.plan.fingerprint()

    def test_structurally_different_plans_differ(self):
        catalog = _catalog()
        scan_a = Select(Scan("means"), col("CID") < lit(3))
        scan_b = Select(Scan("means"), col("CID") < lit(4))
        assert scan_a.fingerprint() != scan_b.fingerprint()
        assert Scan("means").fingerprint() != Scan("means", "e.").fingerprint()
        assert (Seed(Scan("means"), "a").fingerprint()
                != Seed(Scan("means"), "b").fingerprint())


class TestPositionPlanOffsetExclusion:
    def test_offset_with_position_plan_raises(self):
        catalog = _catalog()
        context = ExecutionContext(catalog, positions=4, aligned=True,
                                   position_offset=8)
        context.position_plan = {7: np.arange(4, dtype=np.int64)}
        with pytest.raises(EngineError, match="mutually exclusive"):
            context.positions_for(7)
        # Even handles absent from the plan must refuse: the offset would
        # shift them while planned seeds stay pinned — silent misalignment.
        with pytest.raises(EngineError, match="mutually exclusive"):
            context.positions_for(99)

    def test_offset_alone_still_works(self):
        catalog = _catalog()
        context = ExecutionContext(catalog, positions=4, aligned=True,
                                   position_offset=8)
        np.testing.assert_array_equal(context.positions_for(0),
                                      np.arange(8, 12))


class _CountingNormal(NORMAL.__class__):
    def __init__(self):
        super().__init__()
        self.validate_calls = 0

    def validate_params(self, params):
        self.validate_calls += 1
        return super().validate_params(params)


class TestSignatureBatchedInstantiate:
    def test_validate_once_per_signature(self):
        catalog = Catalog()
        catalog.add_table(Table("params", {
            "k": np.arange(9), "m": [1.0, 1.0, 1.0, 2.0, 2.0, 2.0,
                                     3.0, 3.0, 3.0]}))
        vg = _CountingNormal()
        seed = Seed(Scan("params"), label="L")
        node = Instantiate(seed, vg, [col("m"), lit(1.0)], [("val", 0)],
                           seed.handle_column)
        node.execute(ExecutionContext(catalog, positions=6, aligned=True))
        # 9 rows but only 3 distinct (m, 1.0) signatures.
        assert vg.validate_calls == 3

    def test_batched_gather_matches_per_row(self):
        catalog = _catalog(rows=8)
        plan = random_table_pipeline(_losses_spec())
        batched_context = ExecutionContext(catalog, positions=32,
                                           aligned=True)
        batched = plan.execute(batched_context)
        # Force the per-row path: a non-empty window_bases (all zero, so
        # the same positions materialize) routes _run through
        # _gather_per_row — the batched gather is purely an execution
        # strategy and must give the same matrix.
        ctx2 = ExecutionContext(catalog, positions=32, aligned=True)
        ctx2.window_bases = dict.fromkeys(batched_context.seeds, 0)
        probe = random_table_pipeline(_losses_spec()).execute(ctx2)
        np.testing.assert_array_equal(batched.rand_columns["val"].values,
                                      probe.rand_columns["val"].values)

    def test_gather_stream_windows_matches_values_at(self):
        catalog = _catalog(rows=5)
        plan = random_table_pipeline(_losses_spec())
        context = ExecutionContext(catalog, positions=16, aligned=True)
        relation = plan.execute(context)
        positions = np.arange(16, dtype=np.int64)
        for row, handle in enumerate(
                relation.rand_columns["val"].seed_handles):
            info = context.seeds[int(handle)]
            np.testing.assert_array_equal(
                relation.rand_columns["val"].values[row],
                info.values_at(positions, 0))

    def test_gather_stream_windows_rejects_descending_chunks(self):
        with pytest.raises(ValueError, match="ascending"):
            gather_stream_windows(
                np.array([5, 1]), 4, [lambda cid: np.zeros(4)])

    def test_gather_stream_windows_within_chunk_disorder_ok(self):
        out = gather_stream_windows(
            np.array([3, 1, 2]), 4,
            [lambda cid: np.arange(4, dtype=np.float64)])
        np.testing.assert_array_equal(out, [[3.0, 1.0, 2.0]])


class TestDeltaMergeEquivalence:
    def _prepare(self, width=12, fresh=24):
        catalog = _catalog(rows=5)
        plan = random_table_pipeline(_losses_spec())
        context = ExecutionContext(catalog, positions=width, aligned=False)
        context.delta_tracking = True
        plan.execute(context)
        # Build a replenishment-shaped plan: keep a few "assigned"
        # positions per seed, then extend past the old window.
        plans = {}
        for index, handle in enumerate(sorted(context.seeds)):
            assigned = np.array([0, 2 + index], dtype=np.int64)
            tail = np.arange(width + index, width + index + fresh,
                             dtype=np.int64)
            plans[handle] = np.concatenate([assigned, tail])
        target = max(len(p) for p in plans.values())
        for handle, p in plans.items():
            extra = target - len(p)
            if extra:
                plans[handle] = np.concatenate([
                    p, np.arange(p[-1] + 1, p[-1] + 1 + extra,
                                 dtype=np.int64)])
        context.positions = target
        context.position_plan = plans
        return catalog, plan, context

    def test_delta_merge_bit_identical_to_full_rebuild(self):
        catalog, plan, context = self._prepare()
        context.delta_mode = True
        merged = plan.execute(context)
        assert context.delta_runs == 1

        rebuilt_context = ExecutionContext(
            catalog, positions=context.positions, aligned=False)
        rebuilt_context.position_plan = dict(context.position_plan)
        rebuilt = random_table_pipeline(_losses_spec()).execute(
            rebuilt_context)
        np.testing.assert_array_equal(merged.rand_columns["val"].values,
                                      rebuilt.rand_columns["val"].values)
        np.testing.assert_array_equal(merged.rand_columns["val"].bases,
                                      rebuilt.rand_columns["val"].bases)

    def test_delta_rejected_when_rows_change(self):
        """A merge baseline with a different row set must be discarded."""
        catalog, plan, context = self._prepare()
        context.delta_mode = True
        # Tamper with the recorded baseline: wrong handle order.
        for materialization in context.materialized.values():
            materialization.handles = materialization.handles[::-1].copy()
        merged = plan.execute(context)
        assert context.delta_runs == 0  # fell back to a full gather
        rebuilt_context = ExecutionContext(
            catalog, positions=context.positions, aligned=False)
        rebuilt_context.position_plan = dict(context.position_plan)
        rebuilt = random_table_pipeline(_losses_spec()).execute(
            rebuilt_context)
        np.testing.assert_array_equal(merged.rand_columns["val"].values,
                                      rebuilt.rand_columns["val"].values)
