"""Unit tests for repro.risk.measures and the grouped-tail reduction."""

import numpy as np
import pytest
from scipy import stats

from repro.risk import grouped
from repro.risk.measures import (
    expected_shortfall,
    expected_shortfall_from_ftable,
    tail_cdf,
    value_at_risk,
)
from repro.sql import Session


class _FakeTailResult:
    """Anything exposing .samples / .quantile_estimate works as input."""

    def __init__(self, samples, quantile_estimate=None):
        self.samples = np.asarray(samples, dtype=np.float64)
        if quantile_estimate is not None:
            self.quantile_estimate = quantile_estimate


class TestValueAtRisk:
    def test_prefers_algorithm_estimate(self):
        result = _FakeTailResult([5.0, 6.0, 7.0], quantile_estimate=4.5)
        assert value_at_risk(result) == 4.5

    def test_raw_samples_use_minimum(self):
        assert value_at_risk(np.array([5.0, 6.0, 7.0])) == 5.0
        assert value_at_risk(_FakeTailResult([3.0, 9.0])) == 3.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            value_at_risk(np.array([]))


class TestExpectedShortfall:
    def test_mean_of_tail_samples(self):
        samples = [10.0, 12.0, 14.0]
        assert expected_shortfall(samples) == pytest.approx(12.0)
        assert expected_shortfall(_FakeTailResult(samples)) == pytest.approx(12.0)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            expected_shortfall([])

    def test_matches_analytic_normal_tail(self):
        """ES of N(0,1) above its q-quantile is phi(z_q)/(1-q)."""
        rng = np.random.default_rng(0)
        draws = rng.normal(size=200_000)
        q = 0.95
        cut = np.quantile(draws, q)
        tail = draws[draws >= cut]
        analytic = stats.norm.pdf(stats.norm.ppf(q)) / (1 - q)
        assert expected_shortfall(tail) == pytest.approx(analytic, rel=0.02)


class TestExpectedShortfallFromFtable:
    def test_weighted_sum(self):
        values = [10.0, 20.0]
        fractions = [0.25, 0.75]
        assert expected_shortfall_from_ftable(values, fractions) == 17.5

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to"):
            expected_shortfall_from_ftable([1.0, 2.0], [0.5, 0.1])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal-length"):
            expected_shortfall_from_ftable([1.0, 2.0], [1.0])
        with pytest.raises(ValueError, match="equal-length"):
            expected_shortfall_from_ftable([], [])


class TestTailCdf:
    def test_sorted_values_and_uniform_steps(self):
        values, probabilities = tail_cdf(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_array_equal(values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(probabilities, [1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            tail_cdf(np.array([]))


class TestGroupedTail:
    CREATE = """
        CREATE TABLE Losses (CID, val) AS
        FOR EACH CID IN means
        WITH v AS Normal(VALUES(m, 1.0))
        SELECT CID, v.* FROM v
    """
    TEMPLATE = """
        SELECT SUM(val) AS loss FROM Losses, segments
        WHERE CID = CID2 AND seg = '{group}'
        WITH RESULTDISTRIBUTION MONTECARLO(20)
        DOMAIN loss >= QUANTILE(0.9)
    """

    def _session(self):
        session = Session(base_seed=2, tail_budget=200, window=150)
        session.add_table("means", {
            "CID": np.arange(10), "m": np.linspace(1.0, 2.0, 10)})
        session.add_table("segments", {
            "CID2": np.arange(10), "seg": ["a"] * 5 + ["b"] * 5})
        session.execute(self.CREATE)
        return session

    def test_one_tail_result_per_group(self):
        results = grouped.grouped_tail(self._session(), self.TEMPLATE,
                                       ["a", "b"])
        assert set(results) == {"a", "b"}
        for result in results.values():
            assert len(result.samples) == 20
            assert np.all(result.samples >= result.quantile_estimate)
        # Segment b holds the larger means, so its VaR must dominate.
        assert (value_at_risk(results["b"]) > value_at_risk(results["a"]))

    def test_template_without_placeholder_rejected(self):
        with pytest.raises(ValueError, match="placeholder"):
            grouped.grouped_tail(self._session(), "SELECT 1", ["a"])

    def test_non_tail_template_rejected(self):
        template = """
            SELECT SUM(val) AS loss FROM Losses, segments
            WHERE CID = CID2 AND seg = '{group}'
            WITH RESULTDISTRIBUTION MONTECARLO(5)
        """
        with pytest.raises(ValueError, match="DOMAIN"):
            grouped.grouped_tail(self._session(), template, ["a"])
