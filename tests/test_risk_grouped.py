"""Tests for per-group tail analysis (the footnote-4 reduction)."""

import numpy as np
import pytest
from scipy import stats

from repro.risk import grouped_tail, value_at_risk
from repro.sql import Session

TEMPLATE = """
    SELECT SUM(val) AS loss FROM Losses, segments
    WHERE CID = CID2 AND seg = '{group}'
    WITH RESULTDISTRIBUTION MONTECARLO(50)
    DOMAIN loss >= QUANTILE(0.95)
"""


@pytest.fixture
def session():
    session = Session(base_seed=4, tail_budget=400, window=500)
    count = 24
    session.add_table("means", {
        "CID": np.arange(count),
        # Segment "b" has much larger means than "a".
        "m": np.concatenate([np.full(12, 1.0), np.full(12, 10.0)])})
    session.add_table("segments", {
        "CID2": np.arange(count), "seg": ["a"] * 12 + ["b"] * 12})
    session.execute("""
        CREATE TABLE Losses (CID, val) AS
        FOR EACH CID IN means
        WITH v AS Normal(VALUES(m, 1.0))
        SELECT CID, v.* FROM v
    """)
    return session


class TestGroupedTail:
    def test_per_group_quantiles(self, session):
        results = grouped_tail(session, TEMPLATE, ["a", "b"])
        assert set(results) == {"a", "b"}
        q_a = stats.norm.ppf(0.95, loc=12.0, scale=np.sqrt(12))
        q_b = stats.norm.ppf(0.95, loc=120.0, scale=np.sqrt(12))
        assert value_at_risk(results["a"]) == pytest.approx(q_a, rel=0.06)
        assert value_at_risk(results["b"]) == pytest.approx(q_b, rel=0.06)
        for result in results.values():
            assert np.all(result.samples >= result.quantile_estimate)

    def test_template_requires_placeholder(self, session):
        with pytest.raises(ValueError, match="placeholder"):
            grouped_tail(session, "SELECT 1 FROM x", ["a"])

    def test_template_must_be_tail_query(self, session):
        template = """
            SELECT SUM(val) AS loss FROM Losses, segments
            WHERE CID = CID2 AND seg = '{group}'
            WITH RESULTDISTRIBUTION MONTECARLO(20)
        """
        with pytest.raises(ValueError, match="DOMAIN"):
            grouped_tail(session, template, ["a"])
