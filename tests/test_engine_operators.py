"""Tests for the physical operators (repro.engine.operators)."""

import numpy as np
import pytest

from repro.engine.errors import PlanError
from repro.engine.expressions import col, lit
from repro.engine.mcdb import AggregateSpec, MonteCarloExecutor
from repro.engine.operators import (
    ExecutionContext, Instantiate, Join, Project, Scan, Seed, Select, Split,
    random_table_pipeline)
from repro.engine.random_table import RandomColumnSpec, RandomTableSpec
from repro.engine.table import Catalog, Table
from repro.vg.builtin import DISCRETE_CHOICE, MULTIVARIATE_NORMAL, NORMAL


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.add_table(Table("means", {
        "CID": np.arange(6), "m": [3.0, 4.0, 5.0, 6.0, 7.0, 8.0]}))
    catalog.add_table(Table("orders", {
        "okey": [1, 2, 3], "year": ["1994", "1995", "1996"]}))
    catalog.add_table(Table("items", {
        "ikey": [10, 11, 12, 13], "okey2": [1, 1, 2, 9]}))
    return catalog


def _ctx(catalog, positions=8, aligned=True, base_seed=0):
    return ExecutionContext(catalog, positions=positions, aligned=aligned,
                            base_seed=base_seed)


def _losses_spec():
    return RandomTableSpec(
        name="Losses", parameter_table="means", vg=NORMAL,
        vg_params=(col("m"), lit(0.0001)),
        random_columns=(RandomColumnSpec("val"),),
        passthrough_columns=("CID",))


class TestScanSeedInstantiate:
    def test_scan(self, catalog):
        relation = Scan("means").execute(_ctx(catalog))
        assert relation.length == 6
        assert set(relation.det_columns) == {"CID", "m"}

    def test_scan_prefix(self, catalog):
        relation = Scan("means", prefix="e1.").execute(_ctx(catalog))
        assert set(relation.det_columns) == {"e1.CID", "e1.m"}

    def test_seed_attaches_unique_stable_handles(self, catalog):
        node = Seed(Scan("means"), label="L")
        first = node.execute(_ctx(catalog))
        second = node.execute(_ctx(catalog))
        handles = first.det_columns["L#seed"]
        assert len(set(handles.tolist())) == 6
        np.testing.assert_array_equal(handles, second.det_columns["L#seed"])

    def test_label_collision_rejected(self, catalog):
        context = _ctx(catalog)
        context.register_label("A")
        context.register_label("A")  # same label is fine
        # A different label mapping to the same 20-bit id is astronomically
        # unlikely; simulate by direct call.
        label_id = context.register_label("A")
        context._labels[label_id] = "other"
        with pytest.raises(PlanError, match="collision"):
            context.register_label("A")

    def test_instantiate_values_follow_parameter_rows(self, catalog):
        plan = random_table_pipeline(_losses_spec())
        relation = plan.execute(_ctx(catalog, positions=16))
        # variance 0.0001 => values hug their means.
        means = catalog.table("means").column("m")
        np.testing.assert_allclose(
            relation.rand_columns["val"].values.mean(axis=1), means, atol=0.05)

    def test_instantiate_is_deterministic_per_seed(self, catalog):
        plan = random_table_pipeline(_losses_spec())
        a = plan.execute(_ctx(catalog, positions=8, base_seed=5))
        b = plan.execute(_ctx(catalog, positions=8, base_seed=5))
        np.testing.assert_array_equal(a.rand_columns["val"].values,
                                      b.rand_columns["val"].values)

    def test_instantiate_differs_across_base_seeds(self, catalog):
        plan = random_table_pipeline(_losses_spec())
        a = plan.execute(_ctx(catalog, positions=8, base_seed=1))
        b = plan.execute(_ctx(catalog, positions=8, base_seed=2))
        assert not np.allclose(a.rand_columns["val"].values,
                               b.rand_columns["val"].values)

    def test_window_base_offsets_materialization(self, catalog):
        """Replenishment contract: materializing from a later base yields
        the same values the full stream would have at those positions."""
        plan = random_table_pipeline(_losses_spec())
        ctx0 = _ctx(catalog, positions=16)
        full = plan.execute(ctx0)
        ctx1 = _ctx(catalog, positions=8)
        for handle in ctx0.seeds:
            ctx1.window_bases[handle] = 8
        shifted = plan.execute(ctx1)
        np.testing.assert_allclose(shifted.rand_columns["val"].values,
                                   full.rand_columns["val"].values[:, 8:])
        np.testing.assert_array_equal(shifted.rand_columns["val"].bases, 8)

    def test_block_vg_instantiate_shares_seed(self, catalog):
        catalog.add_table(Table("params", {"k": [0]}))
        spec = RandomTableSpec(
            name="Pair", parameter_table="params", vg=MULTIVARIATE_NORMAL,
            vg_params=(lit(0.0), lit(0.0), lit(1.0), lit(0.99),
                       lit(0.99), lit(1.0)),
            random_columns=(RandomColumnSpec("a", 0), RandomColumnSpec("b", 1)))
        relation = random_table_pipeline(spec).execute(_ctx(catalog, positions=256))
        a = relation.rand_columns["a"]
        b = relation.rand_columns["b"]
        np.testing.assert_array_equal(a.seed_handles, b.seed_handles)
        correlation = np.corrcoef(a.values[0], b.values[0])[0, 1]
        assert correlation > 0.9


class TestSelect:
    def test_deterministic_select_drops_rows(self, catalog):
        plan = Select(random_table_pipeline(_losses_spec()), col("CID") < lit(3))
        relation = plan.execute(_ctx(catalog))
        assert relation.length == 3
        assert not relation.presence

    def test_random_select_creates_presence(self, catalog):
        plan = Select(random_table_pipeline(_losses_spec()),
                      col("val") > lit(5.5))
        relation = plan.execute(_ctx(catalog, positions=32))
        # CIDs 3,4,5 (means 6,7,8) stay; tight variance makes it clean.
        assert relation.length == 3
        assert len(relation.presence) == 1
        assert relation.presence[0].flags.all()

    def test_random_select_drops_never_true_tuples(self, catalog):
        plan = Select(random_table_pipeline(_losses_spec()),
                      col("val") > lit(100.0))
        relation = plan.execute(_ctx(catalog, positions=32))
        assert relation.length == 0

    def test_partial_presence(self, catalog):
        catalog.add_table(Table("one", {"m1": [0.0]}))
        spec = RandomTableSpec(
            name="U", parameter_table="one", vg=NORMAL,
            vg_params=(col("m1"), lit(1.0)),
            random_columns=(RandomColumnSpec("u"),))
        plan = Select(random_table_pipeline(spec), col("u") > lit(0.0))
        relation = plan.execute(_ctx(catalog, positions=64))
        flags = relation.presence[0].flags
        assert 0 < flags.sum() < 64
        np.testing.assert_array_equal(
            flags[0], relation.rand_columns["u"].values[0] > 0)

    def test_multi_seed_predicate_rejected_in_tail_mode(self, catalog):
        catalog.add_table(Table("two", {"m1": [0.0, 1.0]}))
        spec = RandomTableSpec(
            name="V", parameter_table="two", vg=NORMAL,
            vg_params=(col("m1"), lit(1.0)),
            random_columns=(RandomColumnSpec("v"),),
            passthrough_columns=("m1",))
        base = random_table_pipeline(spec)
        # Join two copies to get two seeds in one tuple.
        spec_b = RandomTableSpec(
            name="W", parameter_table="two", vg=NORMAL,
            vg_params=(col("m1"), lit(1.0)),
            random_columns=(RandomColumnSpec("w"),),
            passthrough_columns=("m1",))
        pipeline_b = random_table_pipeline(spec_b, prefix="w.")
        # Simplest cross-seed relation: add det keys and join 1:1.
        with_key_a = Project(base, outputs=[("k", col("m1") * lit(0))],
                             keep=["v"])
        with_key_b = Project(pipeline_b, outputs=[("k2", col("w.m1") * lit(0))],
                             keep=["w.w"])
        joined = Join(with_key_a, with_key_b, ["k"], ["k2"])
        node = Select(joined, col("v") < col("w.w"))
        from repro.engine.errors import AlignmentError
        with pytest.raises(AlignmentError, match="pulled up"):
            node.execute(_ctx(catalog, positions=8, aligned=False))
        # Aligned (MC) mode evaluates it in-plan without complaint.
        out = node.execute(_ctx(catalog, positions=8, aligned=True))
        assert len(out.presence) == 1


class TestProjectJoinSplit:
    def test_project_keep_and_derive(self, catalog):
        plan = Project(random_table_pipeline(_losses_spec()),
                       outputs=[("double", col("val") * lit(2)),
                                ("cid10", col("CID") * lit(10))],
                       keep=["CID", "val"])
        relation = plan.execute(_ctx(catalog))
        assert set(relation.det_columns) == {"CID", "cid10"}
        assert set(relation.rand_columns) == {"val", "double"}
        np.testing.assert_allclose(relation.rand_columns["double"].values,
                                   relation.rand_columns["val"].values * 2)
        # Lineage preserved for single-seed derivations.
        np.testing.assert_array_equal(
            relation.rand_columns["double"].seed_handles,
            relation.rand_columns["val"].seed_handles)

    def test_project_unknown_keep_rejected(self, catalog):
        plan = Project(Scan("means"), keep=["zz"])
        with pytest.raises(PlanError, match="unknown column"):
            plan.execute(_ctx(catalog))

    def test_join_matches_keys(self, catalog):
        plan = Join(Scan("orders"), Scan("items"), ["okey"], ["okey2"])
        relation = plan.execute(_ctx(catalog))
        assert relation.length == 3  # okey 1 matches twice, 2 once, 3/9 none
        np.testing.assert_array_equal(sorted(relation.det_columns["ikey"]),
                                      [10, 11, 12])

    def test_join_duplicate_columns_rejected(self, catalog):
        plan = Join(Scan("orders"), Scan("orders"), ["okey"], ["okey"])
        with pytest.raises(PlanError, match="alias"):
            plan.execute(_ctx(catalog))

    def test_join_on_random_column_rejected(self, catalog):
        losses = random_table_pipeline(_losses_spec())
        plan = Join(losses, Scan("orders"), ["val"], ["okey"])
        with pytest.raises(PlanError, match="Split"):
            plan.execute(_ctx(catalog))

    def test_join_carries_random_columns(self, catalog):
        losses = random_table_pipeline(_losses_spec())
        plan = Join(Scan("items"), losses, ["okey2"], ["CID"])
        relation = plan.execute(_ctx(catalog))
        assert relation.length == 3  # okey2 in {1,1,2}; 9 has no CID mate
        assert "val" in relation.rand_columns

    def test_split_discretizes(self, catalog):
        catalog.add_table(Table("people", {"pid": [0]}))
        spec = RandomTableSpec(
            name="Ages", parameter_table="people", vg=DISCRETE_CHOICE,
            vg_params=(lit(20.0), lit(0.5), lit(21.0), lit(0.5)),
            random_columns=(RandomColumnSpec("age"),),
            passthrough_columns=("pid",))
        plan = Split(random_table_pipeline(spec), "age")
        relation = plan.execute(_ctx(catalog, positions=64))
        # The Sec. 8 example: Jane fans out into one tuple per age value.
        assert relation.length == 2
        assert "age" in relation.det_columns
        assert sorted(relation.det_columns["age"]) == [20.0, 21.0]
        flags = relation.presence[0].flags
        # Exactly one copy is present at every position.
        np.testing.assert_array_equal(flags.sum(axis=0), np.ones(64))

    def test_split_requires_random_column(self, catalog):
        plan = Split(Scan("means"), "m")
        with pytest.raises(PlanError, match="not a random column"):
            plan.execute(_ctx(catalog))

    def test_split_then_join_on_age(self, catalog):
        """Sec. 8 end to end: join on a (formerly) random attribute."""
        catalog.add_table(Table("people", {"pid": [0]}))
        catalog.add_table(Table("clubs", {"minage": [21.0], "club": ["21+"]}))
        spec = RandomTableSpec(
            name="Ages2", parameter_table="people", vg=DISCRETE_CHOICE,
            vg_params=(lit(20.0), lit(0.5), lit(21.0), lit(0.5)),
            random_columns=(RandomColumnSpec("age"),),
            passthrough_columns=("pid",))
        plan = Join(Split(random_table_pipeline(spec), "age"), Scan("clubs"),
                    ["age"], ["minage"])
        executor = MonteCarloExecutor(
            plan, [AggregateSpec("members", "count")], catalog)
        result = executor.run(2000)
        dist = result.distribution("members")
        # Jane is 21 in about half the worlds.
        assert abs(dist.expectation() - 0.5) < 0.05


class TestDeterministicCaching:
    def test_det_subtree_cached_across_runs(self, catalog):
        plan = Select(Scan("means"), col("CID") < lit(3))
        context = _ctx(catalog)
        first = plan.execute(context)
        executions = context.node_executions
        second = plan.execute(context)
        assert context.node_executions == executions  # wholly cached
        assert second is first

    def test_random_nodes_never_cached(self, catalog):
        plan = random_table_pipeline(_losses_spec())
        context = _ctx(catalog)
        plan.execute(context)
        before = context.node_executions
        plan.execute(context)
        # Scan and Seed are deterministic (stable handles) and cached;
        # Instantiate and the Project above it re-run.
        assert context.node_executions == before + 2
