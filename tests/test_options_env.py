"""``MCDBR_*`` environment-knob parsing (``ExecutionOptions.from_env``).

Every execution knob is overridable from the environment for CI matrix
runs and the quickstart; parsing must be eager and strict — a misspelled
value fails with a clear :class:`EngineError` naming the variable, never
a late ``ValueError`` from some construction site deep in a query.
"""

import pytest

from repro.engine.errors import EngineError
from repro.engine.options import (
    ExecutionOptions, ServerOptions, env_bool, env_choice, env_float,
    env_int)

ALL_KNOBS = (
    "MCDBR_ENGINE", "MCDBR_N_JOBS", "MCDBR_BACKEND", "MCDBR_SHARD_SIZE",
    "MCDBR_REPLENISHMENT", "MCDBR_DET_CACHE", "MCDBR_WINDOW_GROWTH",
    "MCDBR_GIBBS_STATE", "MCDBR_STATE_REINIT", "MCDBR_SPECULATE",
    "MCDBR_SHM", "MCDBR_SPECULATE_DEPTH", "MCDBR_SWEEP_ORDER",
    "MCDBR_JOIN_TIMEOUT", "MCDBR_DET_CACHE_KEYING")


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for name in ALL_KNOBS:
        monkeypatch.delenv(name, raising=False)


class TestFromEnvDefaults:
    def test_empty_environment_gives_defaults(self):
        options = ExecutionOptions.from_env()
        assert options == ExecutionOptions(
            engine="vectorized", n_jobs=1, backend="process",
            shard_size=None, replenishment="delta", det_cache="session",
            det_cache_keying="table", window_growth=1.0, gibbs_state="worker", state_reinit="delta",
            speculate_followups=True, speculate_depth=4,
            sweep_order="adaptive", join_timeout=None)

    def test_overrides_win_over_environment(self, monkeypatch):
        monkeypatch.setenv("MCDBR_N_JOBS", "4")
        monkeypatch.setenv("MCDBR_BACKEND", "thread")
        options = ExecutionOptions.from_env(backend="serial")
        assert options.backend == "serial"
        assert options.n_jobs == 4  # env still applies where not overridden

    def test_unknown_override_is_rejected(self):
        with pytest.raises(EngineError, match="unknown ExecutionOptions"):
            ExecutionOptions.from_env(warp_drive=True)

    def test_misspelled_variable_name_is_rejected(self, monkeypatch):
        """A typo'd *name* must fail fast too — silently falling back to
        the default is the exact failure mode from_env exists to stop."""
        monkeypatch.setenv("MCDBR_SPECULTE", "0")
        with pytest.raises(EngineError, match="MCDBR_SPECULTE"):
            ExecutionOptions.from_env()


class TestFromEnvValues:
    @pytest.mark.parametrize("name, value, field, expected", [
        ("MCDBR_ENGINE", "reference", "engine", "reference"),
        ("MCDBR_N_JOBS", "3", "n_jobs", 3),
        ("MCDBR_BACKEND", "serial", "backend", "serial"),
        ("MCDBR_SHARD_SIZE", "7", "shard_size", 7),
        ("MCDBR_REPLENISHMENT", "full", "replenishment", "full"),
        ("MCDBR_DET_CACHE", "off", "det_cache", "off"),
        ("MCDBR_DET_CACHE_KEYING", "catalog", "det_cache_keying", "catalog"),
        ("MCDBR_WINDOW_GROWTH", "2.5", "window_growth", 2.5),
        ("MCDBR_GIBBS_STATE", "broadcast", "gibbs_state", "broadcast"),
        ("MCDBR_STATE_REINIT", "full", "state_reinit", "full"),
        ("MCDBR_SPECULATE", "0", "speculate_followups", False),
        ("MCDBR_SHM", "off", "shm", "off"),
        ("MCDBR_SPECULATE_DEPTH", "8", "speculate_depth", 8),
        ("MCDBR_SPECULATE_DEPTH", "0", "speculate_depth", 0),
        ("MCDBR_SWEEP_ORDER", "natural", "sweep_order", "natural"),
        ("MCDBR_JOIN_TIMEOUT", "2.5", "join_timeout", 2.5),
    ])
    def test_each_knob_flows_through(self, monkeypatch, name, value,
                                     field, expected):
        monkeypatch.setenv(name, value)
        assert getattr(ExecutionOptions.from_env(), field) == expected

    @pytest.mark.parametrize("spelling, expected", [
        ("1", True), ("true", True), ("YES", True), ("On", True),
        ("0", False), ("false", False), ("No", False), ("OFF", False),
    ])
    def test_boolean_spellings(self, monkeypatch, spelling, expected):
        monkeypatch.setenv("MCDBR_SPECULATE", spelling)
        assert ExecutionOptions.from_env().speculate_followups is expected


class TestFromEnvRejections:
    @pytest.mark.parametrize("name, value", [
        ("MCDBR_ENGINE", "warp-drive"),
        ("MCDBR_BACKEND", "fork"),
        ("MCDBR_REPLENISHMENT", "partial"),
        ("MCDBR_DET_CACHE", "disk"),
        ("MCDBR_DET_CACHE_KEYING", "row"),
        ("MCDBR_GIBBS_STATE", "parent"),
        ("MCDBR_STATE_REINIT", "incremental"),
        ("MCDBR_SHM", "auto"),
        ("MCDBR_SWEEP_ORDER", "random"),
    ])
    def test_invalid_choice_names_the_variable(self, monkeypatch, name,
                                               value):
        monkeypatch.setenv(name, value)
        with pytest.raises(EngineError, match=name):
            ExecutionOptions.from_env()

    @pytest.mark.parametrize("value", ["two", "", "1.5"])
    def test_non_integer_n_jobs(self, monkeypatch, value):
        monkeypatch.setenv("MCDBR_N_JOBS", value)
        with pytest.raises(EngineError, match="MCDBR_N_JOBS"):
            ExecutionOptions.from_env()

    def test_n_jobs_below_minimum(self, monkeypatch):
        monkeypatch.setenv("MCDBR_N_JOBS", "0")
        with pytest.raises(EngineError, match="must be >= 1"):
            ExecutionOptions.from_env()

    def test_shard_size_below_minimum(self, monkeypatch):
        monkeypatch.setenv("MCDBR_SHARD_SIZE", "0")
        with pytest.raises(EngineError, match="MCDBR_SHARD_SIZE"):
            ExecutionOptions.from_env()

    @pytest.mark.parametrize("value", ["fast", "0.5"])
    def test_invalid_window_growth(self, monkeypatch, value):
        monkeypatch.setenv("MCDBR_WINDOW_GROWTH", value)
        with pytest.raises(EngineError, match="MCDBR_WINDOW_GROWTH"):
            ExecutionOptions.from_env()

    @pytest.mark.parametrize("value", ["maybe", "2", ""])
    def test_invalid_boolean(self, monkeypatch, value):
        monkeypatch.setenv("MCDBR_SPECULATE", value)
        with pytest.raises(EngineError, match="MCDBR_SPECULATE"):
            ExecutionOptions.from_env()

    @pytest.mark.parametrize("value", ["-1", "four", "2.5", ""])
    def test_invalid_speculate_depth(self, monkeypatch, value):
        monkeypatch.setenv("MCDBR_SPECULATE_DEPTH", value)
        with pytest.raises(EngineError, match="MCDBR_SPECULATE_DEPTH"):
            ExecutionOptions.from_env()

    @pytest.mark.parametrize("value", ["0", "-2", "soon", ""])
    def test_invalid_join_timeout(self, monkeypatch, value):
        monkeypatch.setenv("MCDBR_JOIN_TIMEOUT", value)
        with pytest.raises(EngineError, match="MCDBR_JOIN_TIMEOUT"):
            ExecutionOptions.from_env()


class TestEnvHelpers:
    """The parsing primitives the import-time defaults also go through."""

    def test_env_choice_default_and_value(self, monkeypatch):
        assert env_choice("MCDBR_GIBBS_STATE", "worker",
                          ("worker", "broadcast")) == "worker"
        monkeypatch.setenv("MCDBR_GIBBS_STATE", "broadcast")
        assert env_choice("MCDBR_GIBBS_STATE", "worker",
                          ("worker", "broadcast")) == "broadcast"

    def test_env_choice_lists_supported_values(self, monkeypatch):
        monkeypatch.setenv("MCDBR_GIBBS_STATE", "nowhere")
        with pytest.raises(EngineError, match="worker|broadcast"):
            env_choice("MCDBR_GIBBS_STATE", "worker",
                       ("worker", "broadcast"))

    def test_env_int_and_float_and_bool(self, monkeypatch):
        monkeypatch.setenv("K_INT", "5")
        monkeypatch.setenv("K_FLOAT", "1.25")
        monkeypatch.setenv("K_BOOL", "off")
        assert env_int("K_INT", 1) == 5
        assert env_float("K_FLOAT", 1.0, 1.0) == 1.25
        assert env_bool("K_BOOL", True) is False
        assert env_int("K_MISSING", 9) == 9
        assert env_float("K_MISSING", 2.0, 1.0) == 2.0
        assert env_bool("K_MISSING", True) is True

    def test_direct_construction_still_raises_value_error(self):
        # The constructor keeps its ValueError contract for programmatic
        # misuse; EngineError is specifically the env-parsing surface.
        with pytest.raises(ValueError, match="state_reinit"):
            ExecutionOptions(state_reinit="bogus")
        with pytest.raises(ValueError, match="det_cache_keying"):
            ExecutionOptions(det_cache_keying="row")
        with pytest.raises(ValueError, match="speculate_followups"):
            ExecutionOptions(speculate_followups="yes")
        with pytest.raises(ValueError, match="speculate_depth"):
            ExecutionOptions(speculate_depth=-1)
        with pytest.raises(ValueError, match="sweep_order"):
            ExecutionOptions(sweep_order="random")
        with pytest.raises(ValueError, match="join_timeout"):
            ExecutionOptions(join_timeout=0.0)


SERVER_KNOBS = ("MCDBR_SERVER_CONCURRENCY", "MCDBR_SERVER_QUEUE_DEPTH",
                "MCDBR_SERVER_QUERY_TIMEOUT")


class TestServerOptionsFromEnv:
    """Risk-service admission knobs (``ServerOptions.from_env``)."""

    @pytest.fixture(autouse=True)
    def _clean_server_env(self, monkeypatch):
        for name in SERVER_KNOBS:
            monkeypatch.delenv(name, raising=False)

    def test_defaults(self):
        options = ServerOptions.from_env()
        assert options.concurrency == 4
        assert options.queue_depth == 32
        assert options.query_timeout == 30.0

    def test_each_knob_flows_through(self, monkeypatch):
        monkeypatch.setenv("MCDBR_SERVER_CONCURRENCY", "2")
        monkeypatch.setenv("MCDBR_SERVER_QUEUE_DEPTH", "5")
        monkeypatch.setenv("MCDBR_SERVER_QUERY_TIMEOUT", "1.5")
        options = ServerOptions.from_env()
        assert options.concurrency == 2
        assert options.queue_depth == 5
        assert options.query_timeout == 1.5

    def test_overrides_win_over_environment(self, monkeypatch):
        monkeypatch.setenv("MCDBR_SERVER_CONCURRENCY", "2")
        options = ServerOptions.from_env(concurrency=8, query_timeout=None)
        assert options.concurrency == 8
        assert options.query_timeout is None

    def test_unknown_override_rejected(self):
        with pytest.raises(EngineError, match="max_tenants"):
            ServerOptions.from_env(max_tenants=3)

    @pytest.mark.parametrize("name,value", [
        ("MCDBR_SERVER_CONCURRENCY", "zero"),
        ("MCDBR_SERVER_QUEUE_DEPTH", "1.5"),
        ("MCDBR_SERVER_QUERY_TIMEOUT", "soon"),
    ])
    def test_invalid_value_names_the_variable(self, monkeypatch, name,
                                              value):
        monkeypatch.setenv(name, value)
        with pytest.raises(EngineError, match=name):
            ServerOptions.from_env()

    def test_server_knobs_do_not_trip_execution_from_env(self, monkeypatch):
        # Both parsers run in one server process from one environment:
        # MCDBR_SERVER_* must not be flagged as a misspelled execution
        # knob by ExecutionOptions.from_env's unknown-name sweep.
        for name, value in zip(SERVER_KNOBS, ("2", "5", "1.5")):
            monkeypatch.setenv(name, value)
        assert ExecutionOptions.from_env().n_jobs >= 1

    def test_direct_construction_validation(self):
        with pytest.raises(ValueError, match="concurrency"):
            ServerOptions(concurrency=0)
        with pytest.raises(ValueError, match="queue_depth"):
            ServerOptions(queue_depth=0)
        with pytest.raises(ValueError, match="query_timeout"):
            ServerOptions(query_timeout=0.0)
        assert ServerOptions(query_timeout=None).query_timeout is None
