"""Tests for Session.explain (plan introspection)."""

import numpy as np
import pytest

from repro.engine.errors import PlanError
from repro.sql import Session


@pytest.fixture
def session():
    session = Session(base_seed=1)
    session.add_table("means", {"CID": np.arange(5),
                                "m": np.linspace(1, 2, 5)})
    session.execute("""
        CREATE TABLE Losses (CID, val) AS
        FOR EACH CID IN means
        WITH v AS Normal(VALUES(m, 1.0))
        SELECT CID, v.* FROM v
    """)
    return session


class TestExplain:
    def test_tail_query_shows_looper_and_pipeline(self, session):
        text = session.explain("""
            SELECT SUM(val) AS t FROM Losses WHERE CID < 3
            WITH RESULTDISTRIBUTION MONTECARLO(10)
            DOMAIN t >= QUANTILE(0.99)
        """)
        assert "GibbsLooper(sum" in text
        assert "Instantiate(Normal" in text
        assert "Seed(Losses)" in text
        assert "Scan(means" in text
        assert "Select(" in text

    def test_pulled_up_predicate_shown(self, session):
        session.add_table("emp_means", {"eid": ["a", "b"], "msal": [1.0, 2.0]})
        session.add_table("sup", {"boss": ["a"], "peon": ["b"]})
        session.execute("""
            CREATE TABLE emp (eid, sal) AS
            FOR EACH r IN emp_means
            WITH v AS Normal(VALUES(msal, 1.0))
            SELECT eid, v.* FROM v
        """)
        text = session.explain("""
            SELECT SUM(emp2.sal - emp1.sal) AS inv
            FROM emp AS emp1, emp AS emp2, sup
            WHERE sup.boss = emp1.eid AND sup.peon = emp2.eid
              AND emp2.sal > emp1.sal
            WITH RESULTDISTRIBUTION MONTECARLO(10)
            DOMAIN inv >= QUANTILE(0.9)
        """)
        assert "pulled-up" in text
        assert "Join(" in text

    def test_mc_query_shows_aggregate(self, session):
        text = session.explain("""
            SELECT SUM(val) AS t FROM Losses
            WITH RESULTDISTRIBUTION MONTECARLO(10)
        """)
        assert text.startswith("Aggregate(sum")

    def test_plain_projection(self, session):
        text = session.explain("SELECT CID FROM means")
        assert "Scan(means" in text

    def test_create_rejected(self, session):
        with pytest.raises(PlanError, match="SELECT"):
            session.explain("""
                CREATE TABLE X (a, b) AS
                FOR EACH r IN means
                WITH v AS Normal(VALUES(m, 1.0))
                SELECT CID, v.* FROM v
            """)


class TestDetMarkers:
    def test_det_markers_flag_cacheable_subtrees(self, session):
        text = session.explain("""
            SELECT SUM(val) AS t FROM Losses WHERE CID < 3
            WITH RESULTDISTRIBUTION MONTECARLO(10)
            DOMAIN t >= QUANTILE(0.99)
        """, det_markers=True)
        # The Seed subtree (Scan -> Seed) is deterministic and served from
        # the det cache on every replenishment re-run; the random operators
        # above it are not.
        assert "Seed(Losses)  [det-cached]" in text
        assert "Instantiate" in text
        assert "Instantiate(Normal -> Losses.val)  [det-cached]" not in text
        # Children of a marked root are folded into it.
        assert "Scan(means)" not in text

    def test_default_explain_unchanged(self, session):
        text = session.explain("""
            SELECT SUM(val) AS t FROM Losses WHERE CID < 3
            WITH RESULTDISTRIBUTION MONTECARLO(10)
            DOMAIN t >= QUANTILE(0.99)
        """)
        assert "[det-cached]" not in text
        assert "Scan(means" in text
