"""The zero-copy shared-memory data plane (``repro.engine.shm``).

Three families of guarantees:

* **Transport** — large numeric arrays hoist into parent-owned segments
  and come back as views bit-equal to the originals; small arrays,
  object-dtype columns and non-array state stay inline; the wire blob
  shrinks to descriptor size.
* **Mutation contract** — snapshot views attach writable (worker-owned
  Gibbs state mutates in place), broadcast views attach read-only (a
  worker write raises instead of silently diverging the other
  attachments).
* **Lifecycle** — every segment is unlinked on ``discard_state``,
  ``close()``, pool reset after a worker death/error, and via the
  finalizer backstop.  ``/dev/shm`` is the oracle: no test may leave an
  ``mcdbr-*`` entry behind.
"""

import mmap
import multiprocessing
import os
import pickle
import signal

import numpy as np
import pytest

from repro.engine.backends import ProcessBackend, make_backend
from repro.engine.errors import EngineError
from repro.engine.options import ExecutionOptions
from repro.engine.shm import (
    MIN_BLOCK_BYTES, ShmAttachCache, ShmBlockStore, ShmDescriptor,
    leaked_segments, shm_loads)

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="POSIX shared memory not available; the store degrades to "
           "plain pickling there and the pickle path is covered "
           "everywhere else")


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test starts and must end with a clean /dev/shm."""
    assert leaked_segments() == []
    yield
    assert leaked_segments() == []


class BigState:
    """Worker-owned payload whose bulk is a hoistable array."""

    def __init__(self, values):
        self.values = np.asarray(values, dtype=np.float64)

    def bump(self, index, amount):    # notification target (in-place)
        self.values[index] += amount

    def splice(self, fresh):          # merge target (copies out)
        self.values = self.values + fresh

    def checksum(self):               # synchronous-call target
        return float(self.values.sum())

    def is_view(self):
        # Attached views sit over the segment's mapping; plain-unpickled
        # arrays sit over an in-heap buffer (and may still have
        # ``owndata`` False, so the mapping type is the discriminator).
        return isinstance(self.values.base, mmap.mmap)


class SharedArrayJob:
    """The catalog pattern: bulk array rides the keyed shared channel."""

    def __init__(self, key, array):
        self.key = key
        self.array = array

    def shared_payload(self):
        return {self.key: self.array}

    def __getstate__(self):
        state = self.__dict__.copy()
        state["array"] = None
        return state

    def attach_shared(self, shared):
        self.array = shared[self.key]

    def run_shard(self, lo, hi):
        return float(self.array[lo:hi].sum())


class SharedWriteJob(SharedArrayJob):
    """Tries to mutate a broadcast view — must raise in the worker."""

    def run_shard(self, lo, hi):
        self.array[lo] = -1.0
        return 0.0


class StuckState:
    """Wedges its worker: ignores SIGTERM, then blocks far past the
    (shrunken, see test) close() join timeouts.  Carries a bulk array so
    the wedged worker really does hold an attached segment."""

    def __init__(self):
        self.values = np.ones(20_000, dtype=np.float64)

    def wedge(self):
        import time
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        time.sleep(600)


class TestBlockStore:
    """ShmBlockStore.dumps / shm_loads round trips."""

    def test_round_trip_is_bit_identical_and_descriptor_sized(self):
        store = ShmBlockStore()
        try:
            payload = {
                "big": np.arange(20_000, dtype=np.float64),
                "ints": np.arange(5_000, dtype=np.int32),
                "bools": np.zeros(4_096, dtype=bool),
                "small": np.arange(8),
                "strings": np.array(["a", "b"], dtype=object),
                "scalar": 7.5,
            }
            blob, segment, array_bytes = store.dumps(payload)
            assert segment is not None
            assert array_bytes == (20_000 * 8 + 5_000 * 4 + 4_096)
            plain = len(pickle.dumps(payload,
                                     protocol=pickle.HIGHEST_PROTOCOL))
            assert len(blob) < plain / 50  # descriptors, not data
            cache = ShmAttachCache()
            out = shm_loads(blob, cache)
            for name in ("big", "ints", "bools", "small"):
                np.testing.assert_array_equal(out[name], payload[name])
                assert out[name].dtype == payload[name].dtype
            assert list(out["strings"]) == ["a", "b"]
            assert out["scalar"] == 7.5
            # Zero-copy means views over the segment mapping; the inline
            # small array decodes over an ordinary in-heap buffer.
            assert isinstance(out["big"].base, mmap.mmap)
            assert not isinstance(out["small"].base, mmap.mmap)
            cache.close()
        finally:
            store.close()
        assert store.live_segments == 0

    def test_repeated_array_hoists_once(self):
        store = ShmBlockStore()
        try:
            array = np.arange(4_096, dtype=np.float64)
            blob, _, array_bytes = store.dumps([array, array, array])
            assert array_bytes == array.nbytes  # one block, three refs
            cache = ShmAttachCache()
            a, b, c = shm_loads(blob, cache)
            np.testing.assert_array_equal(a, array)
            # All three decode as views over the same block — the segment
            # holds the array once, like plain pickle's memo holds it once.
            assert np.shares_memory(a, b) and np.shares_memory(b, c)
            cache.close()
        finally:
            store.close()

    def test_small_and_object_arrays_stay_inline(self):
        store = ShmBlockStore()
        try:
            payload = {
                "tiny": np.arange(MIN_BLOCK_BYTES // 8 - 1,
                                  dtype=np.float64),
                "objects": np.array([{"k": 1}] * 1000, dtype=object),
            }
            blob, segment, array_bytes = store.dumps(payload)
            assert segment is None and array_bytes == 0
            # No descriptors: decodes with plain pickle, no cache needed.
            out = pickle.loads(blob)
            np.testing.assert_array_equal(out["tiny"], payload["tiny"])
        finally:
            store.close()

    def test_noncontiguous_arrays_round_trip(self):
        store = ShmBlockStore()
        try:
            matrix = np.arange(10_000, dtype=np.float64).reshape(100, 100)
            payload = [matrix[:, 3], matrix[::2], matrix.T]
            blob, segment, _ = store.dumps(payload)
            assert segment is not None
            cache = ShmAttachCache()
            out = shm_loads(blob, cache)
            for got, want in zip(out, payload):
                np.testing.assert_array_equal(got, want)
            cache.close()
        finally:
            store.close()

    def test_writeable_contract(self):
        store = ShmBlockStore()
        try:
            data = np.arange(2_048, dtype=np.float64)
            cache = ShmAttachCache()
            frozen = shm_loads(store.dumps(data, writeable=False)[0], cache)
            with pytest.raises(ValueError, match="read-only"):
                frozen[0] = 1.0
            live = shm_loads(store.dumps(data, writeable=True)[0], cache)
            live[0] = 42.0
            assert live[0] == 42.0
            cache.close()
        finally:
            store.close()

    def test_release_is_idempotent_and_close_reaps_everything(self):
        store = ShmBlockStore()
        _, first, _ = store.dumps(np.arange(2_048, dtype=np.float64))
        _, second, _ = store.dumps(np.arange(2_048, dtype=np.float64))
        assert store.live_segments == 2
        store.release(first)
        store.release(first)   # idempotent
        store.release(None)    # no-op
        assert store.live_segments == 1
        store.close()
        assert store.live_segments == 0
        assert leaked_segments() == []
        # The store stays usable after close (pool-reset semantics).
        _, third, _ = store.dumps(np.arange(2_048, dtype=np.float64))
        assert third is not None
        store.close()

    def test_finalizer_backstop_unlinks_dropped_store(self):
        store = ShmBlockStore()
        store.dumps(np.arange(2_048, dtype=np.float64))
        assert len(leaked_segments()) == 1
        del store  # no close(): the weakref.finalize backstop must reap
        assert leaked_segments() == []

    def test_unavailable_store_degrades_to_plain_pickle(self):
        store = ShmBlockStore()
        store.available = False  # what an OSError on creation flips
        data = np.arange(20_000, dtype=np.float64)
        blob, segment, array_bytes = store.dumps(data)
        assert segment is None and array_bytes == 0
        np.testing.assert_array_equal(pickle.loads(blob), data)
        store.close()

    def test_unpickling_descriptor_without_cache_fails_loudly(self):
        store = ShmBlockStore()
        try:
            blob, _, _ = store.dumps(np.arange(2_048, dtype=np.float64))
            with pytest.raises(pickle.UnpicklingError, match="attach cache"):
                shm_loads(blob, None)
        finally:
            store.close()

    def test_descriptor_pickles_in_tens_of_bytes(self):
        descriptor = ShmDescriptor("mcdbr-1-0", "<f8", (1000, 40), 64, False)
        assert len(pickle.dumps(descriptor,
                                protocol=pickle.HIGHEST_PROTOCOL)) < 120


class TestProcessBackendDataPlane:
    """The three production flows through a real worker pool."""

    def test_shared_channel_ships_descriptors(self):
        backend = ProcessBackend(2)
        array = np.arange(50_000, dtype=np.float64)
        try:
            job = SharedArrayJob(("table", 1), array)
            results = backend.run_job(job, [(0, 25_000), (25_000, 50_000)])
            assert results == [float(array[:25_000].sum()),
                               float(array[25_000:].sum())]
            stats = backend.stats
            assert stats["shm_segments"] == 1
            assert stats["shm_bytes"] == array.nbytes
            # Two workers attached the same segment: delivered-by-
            # reference bytes count per recipient, placed bytes once.
            assert stats["shm_attached_bytes"] == 2 * array.nbytes
            assert stats["shared_wire_bytes"] < array.nbytes / 100
        finally:
            backend.close()
        assert backend.shm_live_segments == 0

    def test_broadcast_views_are_read_only_in_workers(self):
        backend = ProcessBackend(2)
        array = np.arange(50_000, dtype=np.float64)
        try:
            with pytest.raises(EngineError, match="read-only"):
                backend.run_job(SharedWriteJob(("table", 2), array),
                                [(0, 10), (10, 20)])
        finally:
            backend.close()

    def test_state_snapshot_views_are_writable_and_private(self):
        """Workers mutate attached snapshot arrays in place; the parent's
        originals never move (the segment holds a private copy)."""
        backend = ProcessBackend(2)
        values = np.ones(30_000, dtype=np.float64)
        try:
            token = backend.init_state([BigState(values),
                                        BigState(values * 2)])
            assert backend.state_call(token, 0, "is_view") is True
            backend.state_cast(token, 0, "bump", 7, 41.0)
            assert backend.state_call(token, 0, "checksum") == \
                float(values.sum()) + 41.0
            assert backend.state_call(token, 1, "checksum") == \
                float(values.sum()) * 2
            assert values[7] == 1.0  # parent copy untouched
            assert backend.stats["state_init_wire_bytes"] < \
                backend.stats["state_init_bytes"] / 50
            backend.discard_state(token)
            # The drain barrier retires the snapshot segments eagerly.
            assert backend.shm_live_segments == 0
        finally:
            backend.close()

    def test_state_merge_rides_shared_memory(self):
        backend = ProcessBackend(1)
        values = np.ones(20_000, dtype=np.float64)
        fresh = np.full(20_000, 3.0)
        try:
            token = backend.init_state([BigState(values)])
            merges_before = backend.stats["shm_segments"]
            backend.state_merge(token, 0, "splice", fresh)
            assert backend.stats["shm_segments"] == merges_before + 1
            assert backend.stats["state_merge_bytes"] >= fresh.nbytes
            assert backend.state_call(token, 0, "checksum") == \
                float((values + fresh).sum())
            backend.discard_state(token)
            assert backend.shm_live_segments == 0
        finally:
            backend.close()

    def test_shm_off_ships_plain_pickles(self):
        backend = ProcessBackend(2, use_shm=False)
        array = np.arange(50_000, dtype=np.float64)
        try:
            job = SharedArrayJob(("table", 3), array)
            results = backend.run_job(job, [(0, 25_000), (25_000, 50_000)])
            assert results == [float(array[:25_000].sum()),
                               float(array[25_000:].sum())]
            token = backend.init_state([BigState(array)])
            assert backend.state_call(token, 0, "is_view") is False
            backend.discard_state(token)
            assert not backend.shm_enabled
            assert backend.stats["shm_segments"] == 0
            assert backend.stats["shm_attached_bytes"] == 0
            assert backend.stats["shared_wire_bytes"] > array.nbytes
        finally:
            backend.close()

    def test_make_backend_honors_the_shm_option(self):
        # Explicit on both sides: the field's *default* tracks MCDBR_SHM,
        # and CI runs this suite under the =off leg too.
        on = make_backend(ExecutionOptions(n_jobs=2, backend="process",
                                           shm="on"))
        off = make_backend(ExecutionOptions(n_jobs=2, backend="process",
                                            shm="off"))
        try:
            assert on.shm_enabled
            assert not off.shm_enabled
        finally:
            on.close()
            off.close()


class TestSegmentLifecycle:
    """No path — clean or faulty — may leak a /dev/shm segment."""

    def test_close_unlinks_everything(self):
        backend = ProcessBackend(2)
        array = np.arange(30_000, dtype=np.float64)
        backend.run_job(SharedArrayJob(("t", 1), array),
                        [(0, 15_000), (15_000, 30_000)])
        backend.init_state([BigState(array), BigState(array)])
        assert backend.shm_live_segments > 0
        backend.close()  # token never discarded: close must reap it
        assert backend.shm_live_segments == 0
        assert leaked_segments() == []

    def test_worker_error_reset_unlinks_everything(self):
        backend = ProcessBackend(2)
        try:
            token = backend.init_state([BigState(np.ones(20_000))])
            with pytest.raises(EngineError):
                backend.state_call(token, 0, "no_such_method")
            # The in-worker failure reset the pool; its segments must have
            # gone with it, before any explicit close().
            assert backend.workers_alive == 0
            assert leaked_segments() == []
        finally:
            backend.close()

    def test_worker_kill_reset_unlinks_everything(self):
        backend = ProcessBackend(2)
        try:
            token = backend.init_state([BigState(np.ones(20_000)),
                                        BigState(np.ones(20_000))])
            backend._workers[0].process.kill()
            backend._workers[0].process.join()
            with pytest.raises(EngineError, match="died"):
                backend.state_call(token, 0, "checksum")
            assert backend.workers_alive == 0
            assert leaked_segments() == []
        finally:
            backend.close()

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="wedge injection relies on fork inheriting the test class")
    def test_close_escalates_to_kill_for_sigterm_immune_workers(
            self, monkeypatch):
        """A worker that shrugs off SIGTERM used to survive close() as a
        zombie holding every attached segment's pages; close must
        escalate to SIGKILL and still unlink everything."""
        from repro.engine import backends as backends_module
        monkeypatch.setattr(backends_module, "_JOIN_TIMEOUT", 0.2)
        backend = ProcessBackend(1)
        try:
            token = backend.init_state([StuckState()])
            backend.state_cast(token, 0, "wedge")  # fire-and-forget
            victim = backend._workers[0].process
            backend.close()
            assert not victim.is_alive()
            assert backend.workers_alive == 0
            assert leaked_segments() == []
        finally:
            backend.close()

    def test_session_close_unlinks_everything(self):
        from repro.sql import Session
        with Session(base_seed=11, tail_budget=200, window=2000,
                     options=ExecutionOptions(n_jobs=2)) as session:
            session.add_table("means", {
                "CID": np.arange(15), "m": np.linspace(1.0, 3.0, 15)})
            session.execute("""
                CREATE TABLE Losses (CID, val) AS
                FOR EACH CID IN means
                WITH myVal AS Normal(VALUES(m, 1.0))
                SELECT CID, myVal.* FROM myVal
            """)
            session.execute("""
                SELECT SUM(val) AS loss FROM Losses WHERE CID < 12
                WITH RESULTDISTRIBUTION MONTECARLO(30)
                DOMAIN loss >= QUANTILE(0.9)
            """)
        assert leaked_segments() == []
