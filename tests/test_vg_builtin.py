"""Unit, statistical, and property tests for the builtin VG functions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.vg import base, builtin
from repro.vg.base import VGRegistry, default_registry

RNG_SEED = 20100913  # VLDB 2010 conference start date


def _draws(vg, params, size=20_000, seed=RNG_SEED):
    rng = np.random.default_rng(seed)
    return vg.sample_blocks(rng, params, size).reshape(size, -1)


SCALAR_CASES = [
    (builtin.NORMAL, (3.0, 4.0)),
    (builtin.UNIFORM, (-1.0, 5.0)),
    (builtin.GAMMA, (2.5, 1.5)),
    (builtin.INVERSE_GAMMA, (4.0, 1.0)),
    (builtin.LOGNORMAL, (0.2, 0.4)),
    (builtin.PARETO, (4.0, 1.0)),
    (builtin.POISSON, (6.0,)),
    (builtin.BERNOULLI, (0.3,)),
    (builtin.DISCRETE_CHOICE, (1.0, 0.2, 5.0, 0.8)),
    (builtin.MIXTURE, (0.4, 0.0, 1.0, 0.6, 10.0, 2.0)),
    (builtin.DETERMINISTIC, (7.5,)),
]


class TestMomentsMatchSampling:
    @pytest.mark.parametrize("vg,params", SCALAR_CASES,
                             ids=[type(v).__name__ for v, _ in SCALAR_CASES])
    def test_sample_mean_matches_analytic_mean(self, vg, params):
        draws = _draws(vg, params)[:, 0]
        se = draws.std(ddof=1) / math.sqrt(len(draws)) if draws.std() > 0 else 1e-12
        assert abs(draws.mean() - vg.mean(params)) < max(5 * se, 1e-9)

    @pytest.mark.parametrize("vg,params", SCALAR_CASES,
                             ids=[type(v).__name__ for v, _ in SCALAR_CASES])
    def test_sample_variance_matches_analytic_variance(self, vg, params):
        draws = _draws(vg, params)[:, 0]
        target = vg.variance(params)
        tolerance = max(0.15 * target, 1e-9)
        assert abs(draws.var(ddof=1) - target) < tolerance


class TestCDFs:
    def test_normal_cdf_against_scipy(self):
        x = np.linspace(-3, 9, 25)
        np.testing.assert_allclose(
            builtin.NORMAL.cdf(x, (3.0, 4.0)),
            stats.norm.cdf(x, loc=3.0, scale=2.0), atol=1e-12)

    def test_uniform_cdf_against_scipy(self):
        x = np.linspace(-2, 6, 25)
        np.testing.assert_allclose(
            builtin.UNIFORM.cdf(x, (-1.0, 5.0)),
            stats.uniform.cdf(x, loc=-1.0, scale=6.0), atol=1e-12)

    def test_lognormal_cdf_against_scipy(self):
        x = np.linspace(0.01, 5, 25)
        np.testing.assert_allclose(
            builtin.LOGNORMAL.cdf(x, (0.2, 0.4)),
            stats.lognorm.cdf(x, 0.4, scale=math.exp(0.2)), atol=1e-12)

    def test_pareto_cdf_against_scipy(self):
        x = np.linspace(0.5, 10, 25)
        np.testing.assert_allclose(
            builtin.PARETO.cdf(x, (4.0, 1.0)),
            stats.pareto.cdf(x, 4.0, scale=1.0), atol=1e-12)

    def test_discrete_choice_cdf_steps(self):
        params = (1.0, 0.2, 5.0, 0.8)
        cdf = builtin.DISCRETE_CHOICE.cdf(np.array([0.0, 1.0, 4.9, 5.0, 9.0]), params)
        np.testing.assert_allclose(cdf, [0.0, 0.2, 0.2, 1.0, 1.0])

    def test_mixture_cdf_is_weighted_sum(self):
        params = (0.4, 0.0, 1.0, 0.6, 10.0, 2.0)
        x = np.linspace(-3, 15, 40)
        expected = 0.4 * stats.norm.cdf(x) + 0.6 * stats.norm.cdf(
            x, loc=10.0, scale=math.sqrt(2.0))
        np.testing.assert_allclose(builtin.MIXTURE.cdf(x, params), expected, atol=1e-12)

    @pytest.mark.parametrize("vg,params", [
        (builtin.NORMAL, (3.0, 4.0)),
        (builtin.PARETO, (3.0, 2.0)),
        (builtin.LOGNORMAL, (0.0, 1.0)),
    ], ids=["Normal", "Pareto", "Lognormal"])
    def test_ks_sampling_agrees_with_cdf(self, vg, params):
        draws = _draws(vg, params, size=4000)[:, 0]
        statistic, pvalue = stats.kstest(draws, lambda x: vg.cdf(x, params))
        assert pvalue > 1e-4, f"KS test rejected: D={statistic}, p={pvalue}"


class TestValidation:
    @pytest.mark.parametrize("vg,bad_params", [
        (builtin.NORMAL, (0.0,)),
        (builtin.NORMAL, (0.0, -1.0)),
        (builtin.UNIFORM, (5.0, 1.0)),
        (builtin.GAMMA, (-1.0, 1.0)),
        (builtin.INVERSE_GAMMA, (1.0, -2.0)),
        (builtin.PARETO, (0.0, 1.0)),
        (builtin.POISSON, (-3.0,)),
        (builtin.BERNOULLI, (1.5,)),
        (builtin.DISCRETE_CHOICE, (1.0,)),
        (builtin.DISCRETE_CHOICE, (1.0, -1.0, 2.0, 0.5)),
        (builtin.MIXTURE, (1.0, 0.0)),
        (builtin.DETERMINISTIC, ()),
    ])
    def test_bad_params_rejected(self, vg, bad_params):
        with pytest.raises(ValueError):
            vg.validate_params(bad_params)

    def test_make_stream_validates(self):
        with pytest.raises(ValueError):
            builtin.NORMAL.make_stream(1, (0.0, -1.0))

    def test_undefined_moments_raise(self):
        with pytest.raises(ValueError):
            builtin.PARETO.mean((0.5, 1.0))
        with pytest.raises(ValueError):
            builtin.PARETO.variance((1.5, 1.0))
        with pytest.raises(ValueError):
            builtin.INVERSE_GAMMA.variance((2.0, 1.0))

    def test_cdf_not_implemented_for_gamma(self):
        with pytest.raises(NotImplementedError):
            builtin.GAMMA.cdf(1.0, (2.0, 1.0))


class TestMultivariateNormal:
    PARAMS = (1.0, -2.0, 4.0, 1.2, 1.2, 9.0)  # means (1,-2); cov [[4,1.2],[1.2,9]]

    def test_block_arity(self):
        assert builtin.MULTIVARIATE_NORMAL.block_arity(self.PARAMS) == 2

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            builtin.MULTIVARIATE_NORMAL.block_arity((1.0, 2.0, 3.0))

    def test_asymmetric_covariance_rejected(self):
        with pytest.raises(ValueError, match="symmetric"):
            builtin.MULTIVARIATE_NORMAL.validate_params(
                (0.0, 0.0, 1.0, 0.9, 0.1, 1.0))

    def test_non_psd_covariance_rejected(self):
        with pytest.raises(ValueError, match="PSD"):
            builtin.MULTIVARIATE_NORMAL.validate_params(
                (0.0, 0.0, 1.0, 2.0, 2.0, 1.0))

    def test_sample_covariance(self):
        draws = _draws(builtin.MULTIVARIATE_NORMAL, self.PARAMS, size=30_000)
        cov = np.cov(draws.T)
        np.testing.assert_allclose(cov, [[4.0, 1.2], [1.2, 9.0]], atol=0.25)
        np.testing.assert_allclose(draws.mean(axis=0), [1.0, -2.0], atol=0.1)

    def test_block_stream_correlated_within_block(self):
        params = (0.0, 0.0, 1.0, 0.95, 0.95, 1.0)
        bs = builtin.MULTIVARIATE_NORMAL.make_block_stream(3, params)
        blocks = np.array([bs.block_at(i) for i in range(2000)])
        correlation = np.corrcoef(blocks.T)[0, 1]
        assert correlation > 0.9

    def test_scalar_stream_refused_for_blocks(self):
        with pytest.raises(ValueError, match="use make_block_stream"):
            builtin.MULTIVARIATE_NORMAL.make_stream(1, self.PARAMS)

    def test_block_stream_deterministic(self):
        a = builtin.MULTIVARIATE_NORMAL.make_block_stream(5, self.PARAMS)
        b = builtin.MULTIVARIATE_NORMAL.make_block_stream(5, self.PARAMS)
        np.testing.assert_allclose(a.block_at(77), b.block_at(77))


class TestRegistry:
    def test_default_registry_has_all_builtins(self):
        for name in ["Normal", "Uniform", "Gamma", "InverseGamma", "Lognormal",
                     "Pareto", "Poisson", "Bernoulli", "DiscreteChoice",
                     "Mixture", "MultivariateNormal", "Deterministic"]:
            assert name in default_registry
            assert default_registry.lookup(name).name == name

    def test_lookup_is_case_insensitive(self):
        assert default_registry.lookup("NORMAL") is builtin.NORMAL
        assert default_registry.lookup("normal") is builtin.NORMAL

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(KeyError, match="unknown VG function"):
            default_registry.lookup("NoSuchVG")

    def test_empty_name_rejected(self):
        class Nameless(base.VGFunction):
            def sample_blocks(self, rng, params, size):
                return np.zeros((size, 1))

        with pytest.raises(ValueError):
            VGRegistry().register(Nameless())

    def test_custom_registry_isolated(self):
        registry = VGRegistry()
        assert "Normal" not in registry
        registry.register(builtin.Normal())
        assert "Normal" in registry


class TestUserDefinedVG:
    def test_user_defined_vg_roundtrip(self):
        """The 'black-box VG function' contract: users can plug in anything."""

        class Triangular(base.VGFunction):
            name = "Triangular"

            def sample_blocks(self, rng, params, size):
                low, mode, high = params
                return rng.triangular(low, mode, high, size=size).reshape(size, 1)

            def mean(self, params):
                return sum(params) / 3.0

        registry = VGRegistry()
        registry.register(Triangular())
        vg = registry.lookup("triangular")
        stream = vg.make_stream(17, (0.0, 1.0, 2.0))
        values = stream.range_values(0, 5000)
        assert np.all((values >= 0.0) & (values <= 2.0))
        assert abs(values.mean() - 1.0) < 0.05


@given(mean=st.floats(-100, 100), variance=st.floats(0.01, 100),
       seed=st.integers(0, 2**31))
@settings(max_examples=30, deadline=None)
def test_property_normal_stream_deterministic_and_finite(mean, variance, seed):
    stream = builtin.NORMAL.make_stream(seed, (mean, variance))
    values = stream.range_values(0, 32)
    assert np.all(np.isfinite(values))
    np.testing.assert_array_equal(
        values, builtin.NORMAL.make_stream(seed, (mean, variance)).range_values(0, 32))


# Valid parameterizations covering *every* VG in the default registry (the
# registry-completeness assertion below fails when a new VG is registered
# without a case here).
DETERMINISM_PARAMS = {
    "normal": (3.0, 4.0),
    "uniform": (-1.0, 5.0),
    "gamma": (2.5, 1.5),
    "inversegamma": (4.0, 1.0),
    "lognormal": (0.2, 0.4),
    "pareto": (4.0, 1.0),
    "poisson": (6.0,),
    "bernoulli": (0.3,),
    "discretechoice": (1.0, 0.2, 5.0, 0.8),
    "mixture": (0.4, 0.0, 1.0, 0.6, 10.0, 2.0),
    "multivariatenormal": (1.0, -2.0, 4.0, 1.2, 1.2, 9.0),
    "exponential": (1.5,),
    "weibull": (1.5, 2.0),
    "beta": (2.0, 3.0),
    "studentt": (5.0, 1.0, 2.0),
    "triangular": (0.0, 1.0, 2.0),
    "deterministic": (7.5,),
}


class TestSeedDeterminism:
    """Stream position i must be a pure function of (seed, params, i) for
    every registered VG — the property replenishment (Sec. 9) relies on."""

    def test_every_registered_vg_is_covered(self):
        assert set(default_registry.names()) == set(DETERMINISM_PARAMS)

    @pytest.mark.parametrize("name", sorted(DETERMINISM_PARAMS))
    def test_same_seed_same_stream(self, name):
        vg = default_registry.lookup(name)
        params = DETERMINISM_PARAMS[name]
        arity = vg.block_arity(params)
        positions = np.array([0, 1, 7, 255, 256, 1000, 5003])
        if arity == 1:
            first = vg.make_stream(99, params).values_at(positions)
            second = vg.make_stream(99, params).values_at(positions)
        else:
            first = vg.make_block_stream(99, params).component_values_at(
                positions, arity - 1)
            second = vg.make_block_stream(99, params).component_values_at(
                positions, arity - 1)
        np.testing.assert_array_equal(first, second)
        assert np.all(np.isfinite(first))

    @pytest.mark.parametrize("name", sorted(DETERMINISM_PARAMS))
    def test_access_order_does_not_matter(self, name):
        """Random access at position i equals sequential access at i."""
        vg = default_registry.lookup(name)
        params = DETERMINISM_PARAMS[name]
        if vg.block_arity(params) != 1:
            stream = vg.make_block_stream(7, params)
            backwards = [stream.component_value_at(p, 0)
                         for p in (600, 300, 3, 0)]
            fresh = vg.make_block_stream(7, params)
            forwards = [fresh.component_value_at(p, 0)
                        for p in (0, 3, 300, 600)]
            assert backwards == forwards[::-1]
            return
        stream = vg.make_stream(7, params)
        backwards = [stream.value_at(p) for p in (600, 300, 3, 0)]
        fresh = vg.make_stream(7, params)
        forwards = [fresh.value_at(p) for p in (0, 3, 300, 600)]
        assert backwards == forwards[::-1]

    # "deterministic" is excluded: constant streams are seed-independent
    # by design (Sec. 3.3's probability-1 convention).
    @pytest.mark.parametrize(
        "name", sorted(set(DETERMINISM_PARAMS) - {"deterministic"}))
    def test_different_seeds_differ(self, name):
        vg = default_registry.lookup(name)
        params = DETERMINISM_PARAMS[name]
        positions = np.arange(64)
        if vg.block_arity(params) != 1:
            a = vg.make_block_stream(1, params).component_values_at(positions, 0)
            b = vg.make_block_stream(2, params).component_values_at(positions, 0)
        else:
            a = vg.make_stream(1, params).values_at(positions)
            b = vg.make_stream(2, params).values_at(positions)
        assert not np.array_equal(a, b)
