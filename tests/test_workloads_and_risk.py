"""Tests for repro.workloads and repro.risk."""

import numpy as np
import pytest
from scipy import stats

from repro.risk import (
    expected_shortfall, expected_shortfall_from_ftable, tail_cdf,
    value_at_risk)
from repro.workloads import (
    NormalResultDistribution, PortfolioWorkload, SalaryWorkload, TPCHWorkload)


class TestNormalResultDistribution:
    DIST = NormalResultDistribution(mean=10.0, variance=4.0)

    def test_cdf_and_quantile_roundtrip(self):
        for q in (0.01, 0.5, 0.975, 0.999):
            x = self.DIST.quantile(q)
            assert self.DIST.cdf(x) == pytest.approx(q, abs=1e-9)

    def test_against_scipy(self):
        xs = np.linspace(0, 20, 21)
        np.testing.assert_allclose(
            self.DIST.cdf(xs), stats.norm.cdf(xs, 10, 2), atol=1e-12)
        assert self.DIST.quantile(0.999) == pytest.approx(
            stats.norm.ppf(0.999, 10, 2), abs=1e-9)

    def test_from_weighted_normals(self):
        dist = NormalResultDistribution.from_weighted_normals(
            weights=[2.0, 0.0, 3.0], means=[1.0, 100.0, 2.0],
            variances=[1.0, 100.0, 2.0])
        assert dist.mean == pytest.approx(2 + 6)
        assert dist.variance == pytest.approx(4 * 1 + 9 * 2)

    def test_conditional_tail_cdf(self):
        cutoff = self.DIST.quantile(0.99)
        assert self.DIST.conditional_tail_cdf(cutoff, cutoff) == pytest.approx(0.0)
        assert self.DIST.conditional_tail_cdf(1e9, cutoff) == pytest.approx(1.0)
        median = self.DIST.quantile(0.995)
        assert self.DIST.conditional_tail_cdf(median, cutoff) == pytest.approx(
            0.5, abs=1e-6)

    def test_expected_shortfall_formula(self):
        q = 0.99
        z = stats.norm.ppf(q)
        expected = 10.0 + 2.0 * stats.norm.pdf(z) / (1 - q)
        assert self.DIST.expected_shortfall(q) == pytest.approx(expected, rel=1e-6)

    def test_middle_width(self):
        width = self.DIST.middle_width(0.99)
        assert width == pytest.approx(2 * 2.0 * stats.norm.ppf(0.995), rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.DIST.quantile(0.0)
        with pytest.raises(ValueError):
            self.DIST.conditional_tail_cdf(0.0, 1e12)


class TestPortfolioWorkload:
    def test_deterministic_generation(self):
        a = PortfolioWorkload(customers=10, seed=3).customer_means()
        b = PortfolioWorkload(customers=10, seed=3).customer_means()
        np.testing.assert_array_equal(a, b)

    def test_session_mc_matches_analytic(self):
        workload = PortfolioWorkload(customers=15, seed=1)
        session = workload.build_session(base_seed=5)
        out = session.execute(
            "SELECT SUM(val) AS t FROM Losses "
            "WITH RESULTDISTRIBUTION MONTECARLO(1500)")
        truth = workload.analytic_total_loss()
        dist = out.distributions.distribution("t")
        assert dist.expectation() == pytest.approx(truth.mean, abs=0.5)
        assert dist.variance() == pytest.approx(truth.variance, rel=0.25)

    def test_tail_query_text(self):
        query = PortfolioWorkload().tail_query(0.99, 100, max_cid=10)
        assert "QUANTILE(0.99)" in query and "CID < 10" in query


class TestSalaryWorkload:
    def test_build_and_run(self):
        workload = SalaryWorkload(employees=12, supervision_edges=15, seed=2)
        session = workload.build_session(base_seed=9, tail_budget=300,
                                         window=400)
        out = session.execute(workload.inversion_query(samples=30,
                                                       quantile=0.9))
        assert out.kind == "tail"
        assert np.all(out.tail.samples >= out.tail.quantile_estimate)


class TestTPCHWorkload:
    def test_generation_shapes_and_determinism(self):
        workload = TPCHWorkload(orders=100, lineitems=400, seed=7)
        a = workload.generate()
        b = workload.generate()
        np.testing.assert_array_equal(a["l_orderkey"], b["l_orderkey"])
        assert (a["l_orderkey"] >= 0).sum() == 320  # join_fraction=0.8

    def test_skewed_join_prefers_early_orders(self):
        workload = TPCHWorkload(orders=200, lineitems=5000, seed=1)
        data = workload.generate()
        joined = data["l_orderkey"][data["l_orderkey"] >= 0]
        first_half = (joined < 100).mean()
        assert first_half > 0.6  # linear skew favors low order indices

    def test_timing_variant_uniform(self):
        workload = TPCHWorkload(orders=50, lineitems=200, variant="timing",
                                seed=2)
        data = workload.generate()
        np.testing.assert_array_equal(data["o_mean"], np.ones(50))

    def test_mc_run_matches_analytic(self):
        workload = TPCHWorkload(orders=60, lineitems=240, seed=4)
        session = workload.build_session(base_seed=11)
        out = session.execute(workload.total_loss_query(samples=1200))
        truth = workload.analytic_distribution()
        dist = out.distributions.distribution("totalLoss")
        assert dist.expectation() == pytest.approx(
            truth.mean, abs=4 * truth.std / np.sqrt(1200) + 1e-9)
        assert dist.variance() == pytest.approx(truth.variance, rel=0.3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TPCHWorkload(variant="bogus")
        with pytest.raises(ValueError):
            TPCHWorkload(join_fraction=0.0)


class TestRiskMeasures:
    def test_value_at_risk_prefers_estimate(self):
        class Result:
            quantile_estimate = 5.0
            samples = np.array([6.0, 7.0])

        assert value_at_risk(Result()) == 5.0
        assert value_at_risk(np.array([3.0, 4.0])) == 3.0

    def test_expected_shortfall(self):
        assert expected_shortfall(np.array([2.0, 4.0])) == 3.0
        with pytest.raises(ValueError):
            expected_shortfall(np.array([]))

    def test_ftable_shortfall(self):
        assert expected_shortfall_from_ftable([10.0, 20.0], [0.25, 0.75]) == 17.5
        with pytest.raises(ValueError, match="sum"):
            expected_shortfall_from_ftable([1.0], [0.5])
        with pytest.raises(ValueError):
            expected_shortfall_from_ftable([], [])

    def test_tail_cdf(self):
        values, cdf = tail_cdf(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_array_equal(values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(cdf, [1 / 3, 2 / 3, 1.0])
