"""Tests for Algorithm 3 (repro.core.cloner)."""

import numpy as np
import pytest
from scipy import stats

from repro.core.cloner import clone_indices, tail_sample
from repro.core.model import GeneralQuery, IndependentBlockModel, SeparableSumQuery
from repro.core.params import TailParams


def _normal_model(r):
    return IndependentBlockModel.iid(lambda g, size: g.normal(0, 1, size), r)


class TestCloneIndices:
    def test_exact_multiple(self):
        rng = np.random.default_rng(0)
        indices = clone_indices(4, 12, rng)
        assert len(indices) == 12
        values, counts = np.unique(indices, return_counts=True)
        assert list(values) == [0, 1, 2, 3]
        assert list(counts) == [3, 3, 3, 3]

    def test_remainder_spread(self):
        rng = np.random.default_rng(1)
        indices = clone_indices(4, 10, rng)
        assert len(indices) == 10
        _, counts = np.unique(indices, return_counts=True)
        assert sorted(counts) == [2, 2, 3, 3]

    def test_shrink_takes_subset_without_replacement(self):
        rng = np.random.default_rng(2)
        indices = clone_indices(10, 4, rng)
        assert len(indices) == 4
        assert len(set(indices.tolist())) == 4

    def test_identity_size(self):
        rng = np.random.default_rng(3)
        indices = clone_indices(5, 5, rng)
        assert sorted(indices.tolist()) == [0, 1, 2, 3, 4]

    def test_errors(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            clone_indices(0, 5, rng)
        with pytest.raises(ValueError):
            clone_indices(5, 0, rng)


class TestTailSampleNormalSum:
    """SUM of r i.i.d. N(0,1): Q ~ N(0, r), everything analytic."""

    R = 25
    P = 0.001

    def _run(self, seed, k=1, budget=4000, samples=100):
        model = _normal_model(self.R)
        query = SeparableSumQuery.simple_sum(self.R)
        return tail_sample(model, query, self.P, num_samples=samples,
                           total_budget=budget, k=k,
                           rng=np.random.default_rng(seed))

    @pytest.fixture(scope="class")
    def shared_result(self):
        # Structural invariants below hold for any seed; share one run so
        # the fast lane pays for a single tail_sample instead of five.
        return self._run(0)

    @pytest.mark.slow
    def test_quantile_estimate_close_to_truth(self):
        true_q = stats.norm.ppf(1 - self.P, scale=np.sqrt(self.R))
        estimates = [self._run(seed).quantile_estimate for seed in range(4)]
        # Appendix C: relative error of the quantile is ~10x tighter than
        # the tail-probability error; a few percent is ample at this budget.
        assert abs(np.mean(estimates) - true_q) / true_q < 0.03
        assert np.std(estimates) / true_q < 0.05

    def test_all_samples_in_tail(self, shared_result):
        result = shared_result
        assert len(result.samples) == 100
        assert np.all(result.samples >= result.quantile_estimate)

    def test_states_consistent_with_samples(self, shared_result):
        result = shared_result
        np.testing.assert_allclose(result.states.sum(axis=1), result.samples,
                                   rtol=1e-9)

    def test_cutoffs_increase_monotonically(self, shared_result):
        result = shared_result
        cutoffs = [step.cutoff for step in result.trace]
        assert cutoffs == sorted(cutoffs)
        assert result.quantile_estimate == cutoffs[-1]

    def test_trace_structure(self, shared_result):
        result = shared_result
        assert len(result.trace) == result.params.m
        for step_index, step in enumerate(result.trace, start=1):
            assert step.step == step_index
            assert step.elite_count >= 1
            assert step.stats.proposals >= step.stats.acceptances
            assert step.seconds >= 0
        sizes = list(result.params.n_steps[1:]) + [100]
        assert [step.cloned_to for step in result.trace] == sizes

    @pytest.mark.slow
    def test_tail_samples_follow_conditioned_distribution(self):
        """Figure 5's property: the empirical tail CDF clusters around the
        analytic conditional CDF at the estimated cutoff."""
        sd = np.sqrt(self.R)
        pvalues = []
        for seed in range(3):
            result = self._run(seed, k=2)
            c = result.quantile_estimate
            tail_mass = stats.norm.sf(c, scale=sd)

            def conditional_cdf(x, _c=c, _mass=tail_mass):
                return (stats.norm.cdf(x, scale=sd)
                        - stats.norm.cdf(_c, scale=sd)) / _mass

            pvalues.append(stats.kstest(result.samples, conditional_cdf).pvalue)
        # Mild dependence between clones makes a strict per-run KS noisy;
        # all runs grossly failing would indicate a real bug.
        assert max(pvalues) > 0.05
        assert np.median(pvalues) > 0.005

    @pytest.mark.slow
    def test_expected_shortfall_close_to_analytic(self):
        """E[Q | Q >= c] = sd * phi(c/sd) / (1 - Phi(c/sd)) for N(0, sd^2)."""
        sd = np.sqrt(self.R)
        shortfalls, analytic = [], []
        for seed in range(4):
            result = self._run(seed)
            c = result.quantile_estimate
            shortfalls.append(result.samples.mean())
            z = c / sd
            analytic.append(sd * stats.norm.pdf(z) / stats.norm.sf(z))
        assert np.mean(shortfalls) == pytest.approx(np.mean(analytic), rel=0.02)

    def test_frequency_table_sums_to_one(self, shared_result):
        result = shared_result
        table = result.frequency_table()
        assert sum(frac for _, frac in table) == pytest.approx(1.0)
        assert min(value for value, _ in table) == pytest.approx(
            result.samples.min())

    def test_reproducible(self, shared_result):
        again = self._run(0)
        assert again.quantile_estimate == shared_result.quantile_estimate
        np.testing.assert_array_equal(again.samples, shared_result.samples)


class TestTailSampleOtherModels:
    @pytest.mark.slow
    def test_exponential_sum_matches_gamma_quantile(self):
        r, p = 20, 0.01
        model = IndependentBlockModel.iid(
            lambda g, size: g.exponential(1.0, size), r)
        query = SeparableSumQuery.simple_sum(r)
        estimates = [
            tail_sample(model, query, p, num_samples=50, total_budget=3000,
                        rng=np.random.default_rng(seed)).quantile_estimate
            for seed in range(3)]
        true_q = stats.gamma.ppf(1 - p, a=r)
        assert abs(np.mean(estimates) - true_q) / true_q < 0.05

    def test_single_block_reduces_to_truncated_marginal(self):
        p = 0.01
        model = _normal_model(1)
        query = SeparableSumQuery.simple_sum(1)
        result = tail_sample(model, query, p, num_samples=300,
                             total_budget=3000, k=2,
                             rng=np.random.default_rng(11))
        c = result.quantile_estimate
        assert abs(c - stats.norm.ppf(1 - p)) < 0.15
        trunc = stats.truncnorm(a=c, b=np.inf)
        assert stats.kstest(result.samples, trunc.cdf).pvalue > 1e-3

    def test_general_query_path_works(self):
        r, p = 10, 0.01
        model = _normal_model(r)
        weights = np.ones(r)
        query = GeneralQuery(lambda x: float(weights @ x))
        result = tail_sample(model, query, p, num_samples=40,
                             total_budget=1200, rng=np.random.default_rng(12))
        true_q = stats.norm.ppf(1 - p, scale=np.sqrt(r))
        assert abs(result.quantile_estimate - true_q) / true_q < 0.1
        assert np.all(result.samples >= result.quantile_estimate)

    def test_weighted_query_with_negative_weights(self):
        # Q = x1 - x2 for independent normals ~ N(0, 2).
        model = _normal_model(2)
        query = SeparableSumQuery(weights=[1.0, -1.0])
        p = 0.01
        result = tail_sample(model, query, p, num_samples=100,
                             total_budget=2000, rng=np.random.default_rng(13))
        true_q = stats.norm.ppf(1 - p, scale=np.sqrt(2))
        assert abs(result.quantile_estimate - true_q) < 0.25

    def test_heavy_tail_produces_stalls_or_high_rejection(self):
        """Appendix B: for Pareto-distributed blocks, the rejection step
        needs many proposals (or stalls outright) once the tail is pushed
        out — the diagnostic signature of the subexponential regime."""
        r = 10
        model = IndependentBlockModel.iid(
            lambda g, size: 1.0 + g.pareto(1.5, size), r)
        query = SeparableSumQuery.simple_sum(r)
        result = tail_sample(model, query, 0.001, num_samples=50,
                             total_budget=3000, max_proposals=200,
                             rng=np.random.default_rng(14))
        heavy = result.total_stats
        light_model = _normal_model(r)
        light = tail_sample(light_model, query, 0.001, num_samples=50,
                            total_budget=3000, max_proposals=200,
                            rng=np.random.default_rng(14)).total_stats
        assert (heavy.stalls > light.stalls
                or heavy.proposals_per_acceptance
                > 2 * light.proposals_per_acceptance)


class TestTailSampleValidation:
    def test_num_samples_validated(self):
        model = _normal_model(2)
        query = SeparableSumQuery.simple_sum(2)
        with pytest.raises(ValueError):
            tail_sample(model, query, 0.1, num_samples=0, total_budget=100)

    def test_params_p_mismatch_rejected(self):
        model = _normal_model(2)
        query = SeparableSumQuery.simple_sum(2)
        params = TailParams(p=0.25, m=1, n_steps=(100,), p_steps=(0.25,))
        with pytest.raises(ValueError, match="does not match"):
            tail_sample(model, query, 0.1, num_samples=10, params=params)

    def test_explicit_params_used(self):
        model = _normal_model(3)
        query = SeparableSumQuery.simple_sum(3)
        params = TailParams(p=1 / 32, m=5, n_steps=(40,) * 5, p_steps=(0.5,) * 5)
        result = tail_sample(model, query, 1 / 32, num_samples=8, params=params,
                             rng=np.random.default_rng(15))
        assert result.params is params
        assert len(result.trace) == 5
        assert len(result.samples) == 8

    def test_default_budget_applied(self):
        model = _normal_model(2)
        query = SeparableSumQuery.simple_sum(2)
        result = tail_sample(model, query, 0.05, num_samples=5,
                             rng=np.random.default_rng(16))
        assert result.params.total_samples >= 900

    def test_engine_selection(self):
        model = _normal_model(3)
        separable = SeparableSumQuery.simple_sum(3)
        general = GeneralQuery(lambda x: float(x.sum()))
        for engine in ("auto", "vectorized", "reference"):
            result = tail_sample(model, separable, 0.05, num_samples=10,
                                 total_budget=400, engine=engine,
                                 rng=np.random.default_rng(20))
            assert np.all(result.samples >= result.quantile_estimate)
        # The scalar path serves general queries; vectorized refuses them.
        tail_sample(model, general, 0.05, num_samples=5, total_budget=400,
                    engine="reference", rng=np.random.default_rng(21))
        with pytest.raises(ValueError, match="SeparableSumQuery"):
            tail_sample(model, general, 0.05, num_samples=5,
                        total_budget=400, engine="vectorized")
        with pytest.raises(ValueError, match="unknown engine"):
            tail_sample(model, separable, 0.05, num_samples=5,
                        total_budget=400, engine="quantum")
