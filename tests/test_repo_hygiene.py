"""Repository hygiene: the bugfix-sweep regressions, pinned.

Three classes of rot this PR cleaned out stay out:

* **Tracked bytecode** — 84 ``__pycache__/*.pyc`` files were committed
  alongside the sources; interpreter-specific, diff-noisy, and a stale
  copy shadows nothing but confuses everything.  ``git ls-files`` is the
  oracle (the CI lint job runs the same check shell-side).
* **Example lifecycle** — every example that opens a ``Session`` must
  scope it in a ``with`` block; ``segmented_portfolio.py`` used to leak
  its worker pool (and, with the shm data plane, would now leak
  ``/dev/shm`` segments) on any exception before ``close()``.
* **Process + segment leaks in practice** — an example run as a real
  subprocess exits cleanly, leaves no ``mcdbr-*`` segment behind, and no
  orphaned worker process scavenging CPU after the parent is gone.
"""

import os
import subprocess
import sys

import pytest

from repro.engine.shm import leaked_segments

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES_DIR = os.path.join(REPO_ROOT, "examples")


def _git_ls_files():
    try:
        proc = subprocess.run(
            ["git", "ls-files"], cwd=REPO_ROOT, capture_output=True,
            text=True, timeout=60)
    except (OSError, subprocess.TimeoutExpired):
        pytest.skip("git not available")
    if proc.returncode != 0:
        pytest.skip("not a git checkout (sdist/installed tree)")
    return proc.stdout.splitlines()


class TestNoTrackedBytecode:

    def test_no_pyc_or_pycache_in_the_index(self):
        offenders = [path for path in _git_ls_files()
                     if path.endswith(".pyc") or "__pycache__" in path]
        assert offenders == [], (
            "compiled bytecode is tracked; `git rm --cached` it "
            f"(.gitignore already covers it): {offenders[:10]}")

    def test_gitignore_covers_the_usual_suspects(self):
        with open(os.path.join(REPO_ROOT, ".gitignore")) as handle:
            ignored = handle.read()
        for pattern in ("__pycache__/", "*.pyc", "BENCH_*.json"):
            assert pattern in ignored


class TestExampleLifecycle:

    def _sources(self):
        for name in sorted(os.listdir(EXAMPLES_DIR)):
            if name.endswith(".py"):
                with open(os.path.join(EXAMPLES_DIR, name)) as handle:
                    yield name, handle.read()

    def test_every_session_example_uses_a_with_block(self):
        """Textual guard: any example that opens a session scopes it.
        (That the ``with`` actually reaps workers and segments is the
        subprocess test below; this one keeps a future example from
        reintroducing the bare-``Session()`` leak pattern.)"""
        offenders = []
        for name, source in self._sources():
            opens_session = "Session(" in source or \
                ".build_session(" in source
            if opens_session and "with " not in source:
                offenders.append(name)
        assert offenders == []
        # The sweep's poster child really is covered, not vacuously.
        assert any("with" in source and "Session" in source
                   for name, source in self._sources()
                   if name == "segmented_portfolio.py")

    @pytest.mark.slow
    def test_example_subprocess_leaves_no_workers_or_segments(self):
        """Run the once-leaky example for real under the process backend:
        clean exit, empty ``/dev/shm``, no orphaned worker processes."""
        script = os.path.join(EXAMPLES_DIR, "segmented_portfolio.py")
        env = dict(os.environ,
                   MCDBR_BACKEND="process", MCDBR_N_JOBS="2",
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        proc = subprocess.run(
            [sys.executable, script], env=env, capture_output=True,
            text=True, timeout=600)
        assert proc.returncode == 0, proc.stderr
        assert leaked_segments() == [], (
            "the example's Session left shared-memory segments behind")
        orphans = _processes_running(script)
        assert orphans == [], (
            f"worker processes outlived the example: {orphans}")


def _processes_running(script: str) -> list[int]:
    """PIDs (not ours) whose cmdline mentions ``script`` — /proc scan,
    no psutil dependency."""
    found = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit() or int(entry) == os.getpid():
            continue
        try:
            with open(f"/proc/{entry}/cmdline", "rb") as handle:
                cmdline = handle.read().decode(errors="replace")
        except OSError:
            continue  # raced an exit, or not ours to read
        if script in cmdline:
            found.append(int(entry))
    return found
