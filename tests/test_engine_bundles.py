"""Tests for repro.engine.bundles."""

import numpy as np
import pytest

from repro.engine.bundles import BundleRelation, PresenceColumn, RandomColumn
from repro.engine.errors import AlignmentError, EngineError
from repro.engine.expressions import col, lit
from repro.engine.table import Table


def _relation(aligned=True, positions=4, length=3):
    relation = BundleRelation(length, positions, aligned)
    relation.add_det_column("id", np.arange(length))
    values = np.arange(length * positions, dtype=float).reshape(length, positions)
    relation.add_rand_column("x", RandomColumn(
        values, seed_handles=np.arange(length) + 100))
    return relation


class TestConstruction:
    def test_from_table(self):
        table = Table("t", {"a": [1, 2], "b": ["u", "v"]})
        relation = BundleRelation.from_table(table, positions=5, aligned=True,
                                             prefix="t.")
        assert relation.length == 2
        assert relation.positions == 5
        assert set(relation.det_columns) == {"t.a", "t.b"}

    def test_shape_validation(self):
        relation = BundleRelation(2, 3, True)
        with pytest.raises(EngineError, match="expected shape"):
            relation.add_det_column("a", np.zeros(3))
        with pytest.raises(EngineError, match="expected shape"):
            relation.add_rand_column("r", RandomColumn(
                np.zeros((2, 2)), seed_handles=np.zeros(2, dtype=np.int64)))
        with pytest.raises(EngineError):
            BundleRelation(-1, 3, True)

    def test_duplicate_names_rejected(self):
        relation = _relation()
        with pytest.raises(EngineError, match="duplicate"):
            relation.add_det_column("x", np.zeros(3))

    def test_random_column_lineage_validation(self):
        with pytest.raises(EngineError, match="seed_handles"):
            RandomColumn(np.zeros((2, 3)), seed_handles=np.zeros(3, dtype=np.int64))
        with pytest.raises(EngineError, match="derived"):
            RandomColumn(np.zeros((2, 3)), seed_handles=None,
                         bases=np.zeros(2, dtype=np.int64))
        with pytest.raises(EngineError, match=r"\(T, W\)"):
            RandomColumn(np.zeros(3), seed_handles=None)

    def test_presence_validation(self):
        with pytest.raises(EngineError):
            PresenceColumn(np.ones(3, dtype=bool), seed_handles=None)
        relation = _relation()
        with pytest.raises(EngineError, match="expected shape"):
            relation.add_presence(PresenceColumn(
                np.ones((3, 99), dtype=bool), seed_handles=None))


class TestEvaluation:
    def test_evaluate_scalar(self):
        relation = _relation()
        np.testing.assert_array_equal(
            relation.evaluate_scalar(col("id") + lit(1)), [1, 2, 3])

    def test_evaluate_scalar_rejects_random(self):
        relation = _relation()
        with pytest.raises(EngineError, match="random columns"):
            relation.evaluate_scalar(col("x"))

    def test_evaluate_scalar_broadcasts_literals(self):
        relation = _relation()
        np.testing.assert_array_equal(
            relation.evaluate_scalar(lit(7)), [7, 7, 7])

    def test_evaluate_positional_broadcasts_det(self):
        relation = _relation()
        out = relation.evaluate_positional(col("x") + col("id") * lit(1000))
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out[1], relation.rand_columns["x"].values[1] + 1000)

    def test_evaluate_positional_det_only_broadcasts(self):
        relation = _relation()
        out = relation.evaluate_positional(col("id"))
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out[:, 0], [0, 1, 2])

    def test_single_seed_check_allows_one_seed(self):
        relation = _relation(aligned=False)
        out = relation.evaluate_positional(col("x") * lit(2), check_single_seed=True)
        assert out.shape == (3, 4)

    def test_single_seed_check_rejects_cross_seed(self):
        relation = _relation(aligned=False)
        relation.add_rand_column("y", RandomColumn(
            np.ones((3, 4)), seed_handles=np.arange(3) + 500))
        with pytest.raises(AlignmentError, match="pulled up"):
            relation.evaluate_positional(col("x") + col("y"),
                                         check_single_seed=True)

    def test_same_seed_two_columns_allowed(self):
        # Two components of one block VG share the seed: combinable in-plan.
        relation = _relation(aligned=False)
        relation.add_rand_column("x2", RandomColumn(
            np.ones((3, 4)), seed_handles=np.arange(3) + 100))
        out = relation.evaluate_positional(col("x") + col("x2"),
                                           check_single_seed=True)
        assert out.shape == (3, 4)

    def test_derived_column_rejected_when_unaligned(self):
        relation = _relation(aligned=False)
        relation.add_rand_column("d", RandomColumn(np.ones((3, 4)),
                                                   seed_handles=None))
        with pytest.raises(AlignmentError):
            relation.evaluate_positional(col("d"), check_single_seed=True)

    def test_combined_presence_alignment_guard(self):
        relation = _relation(aligned=False)
        relation.add_presence(PresenceColumn(
            np.ones((3, 4), dtype=bool),
            seed_handles=relation.rand_columns["x"].seed_handles))
        with pytest.raises(AlignmentError):
            relation.combined_presence()

    def test_combined_presence_ands(self):
        relation = _relation(aligned=True)
        a = np.ones((3, 4), dtype=bool)
        a[0, 0] = False
        b = np.ones((3, 4), dtype=bool)
        b[0, 1] = False
        relation.add_presence(PresenceColumn(a, seed_handles=None))
        relation.add_presence(PresenceColumn(b, seed_handles=None))
        combined = relation.combined_presence()
        assert not combined[0, 0] and not combined[0, 1]
        assert combined.sum() == 10

    def test_combined_presence_none_when_empty(self):
        assert _relation().combined_presence() is None


class TestRowOperations:
    def test_take_slices_everything(self):
        relation = _relation()
        relation.add_presence(PresenceColumn(
            np.ones((3, 4), dtype=bool),
            seed_handles=relation.rand_columns["x"].seed_handles))
        out = relation.take(np.array([2, 0]))
        assert out.length == 2
        np.testing.assert_array_equal(out.det_columns["id"], [2, 0])
        np.testing.assert_array_equal(out.rand_columns["x"].seed_handles, [102, 100])
        assert out.presence[0].flags.shape == (2, 4)

    def test_filter_rows(self):
        relation = _relation()
        out = relation.filter_rows(np.array([True, False, True]))
        np.testing.assert_array_equal(out.det_columns["id"], [0, 2])

    def test_filter_rows_shape_check(self):
        with pytest.raises(EngineError, match="row mask"):
            _relation().filter_rows(np.array([True]))

    def test_rename(self):
        relation = _relation()
        out = relation.rename({"x": "loss"})
        assert "loss" in out.rand_columns and "x" not in out.rand_columns
        assert "id" in out.det_columns

    def test_seeds_of_expression(self):
        relation = _relation()
        assert relation.seeds_of_expression(col("x")) == {100, 101, 102}
        assert relation.seeds_of_expression(col("id")) == set()
        relation.add_rand_column("d", RandomColumn(np.ones((3, 4)),
                                                   seed_handles=None))
        assert relation.seeds_of_expression(col("d")) is None
