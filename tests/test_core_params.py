"""Tests for Appendix C parameter selection (repro.core.params)."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.core import params as pm


class TestHFactorAndMSRE:
    def test_h_factor_single_step(self):
        # h_c = (n p + c) / (n + c) for one step.
        assert pm.h_factor([100], [0.1], 1.0) == pytest.approx(11.0 / 101.0)
        assert pm.h_factor([100], [0.1], 2.0) == pytest.approx(12.0 / 102.0)

    def test_h_factor_multiplies_over_steps(self):
        single = pm.h_factor([50], [0.2], 1.0)
        assert pm.h_factor([50, 50], [0.2, 0.2], 1.0) == pytest.approx(single ** 2)

    def test_h_factor_bounds(self):
        # p <= h_c <= 1 for feasible parameters (Appendix C).
        for n, q in [(10, 0.5), (100, 0.1), (1000, 0.031623)]:
            value = pm.h_factor([n, n], [q, q], 1.0)
            assert q * q <= value <= 1.0

    def test_h_factor_length_mismatch(self):
        with pytest.raises(ValueError):
            pm.h_factor([10, 20], [0.5], 1.0)

    def test_msre_matches_beta_moment_derivation(self):
        for n_steps, p_steps in [
            ([100] * 3, [0.1] * 3),
            ([200, 100, 50], [0.25, 0.2, 0.02]),
            ([500] * 5, [0.25] * 5),
        ]:
            p = float(np.prod(p_steps))
            assert pm.msre(n_steps, p_steps, p) == pytest.approx(
                pm.msre_beta_moments(n_steps, p_steps, p), rel=1e-12)

    def test_msre_positive_and_decreasing_in_n(self):
        p = 0.001
        values = [pm.msre([n] * 4, [p ** 0.25] * 4, p) for n in (50, 200, 1000, 5000)]
        assert all(v > 0 for v in values)
        assert values == sorted(values, reverse=True)

    def test_msre_simulation_agrees_with_closed_form(self):
        # n (1 - q) integral so that the integer elite count of the
        # simulation matches the continuous closed form exactly.
        p = 0.3 ** 3
        params = pm.TailParams(p=p, m=3, n_steps=(150,) * 3, p_steps=(0.3,) * 3)
        closed = params.expected_msre()
        simulated = pm.simulate_msre(params, runs=400_000,
                                     rng=np.random.default_rng(42))
        assert simulated == pytest.approx(closed, rel=0.05)

    def test_simulated_msre_handles_degenerate_step(self):
        params = pm.TailParams(p=0.25, m=2, n_steps=(100, 100), p_steps=(0.25, 1.0))
        value = pm.simulate_msre(params, runs=10_000, rng=np.random.default_rng(0))
        assert value > 0


class TestTheorem1:
    def test_g_m_formula(self):
        total, p, c, m = 1000, 0.001, 1.0, 4
        n = total / m
        expected = ((n * p ** 0.25 + c) / (n + c)) ** m
        assert pm.g_m(total, p, c, m) == pytest.approx(expected)

    def test_g_m_rejects_bad_m(self):
        with pytest.raises(ValueError):
            pm.g_m(100, 0.01, 1.0, 0)

    def test_optimal_m_matches_brute_force(self):
        for total, p in [(500, 1 / 32), (1000, 0.001), (2000, 0.0001), (100, 0.05)]:
            for c in (1.0, 2.0):
                m_star = pm.optimal_m(total, p, c)
                # Brute force over the feasible range: g_{m*} must be minimal
                # among all m up to the first increase (unimodality).
                feasible = [m for m in range(1, total // 2 + 1)
                            if total // m >= 2 and (total // m) * p ** (1 / m) >= 1]
                best = min(feasible, key=lambda m: pm.g_m(total, p, c, m))
                assert m_star == best, (total, p, c, m_star, best)

    def test_paper_parameterization_is_near_optimal(self):
        # Appendix D uses m = 5, p^(1/m) = 0.25 (p ~ 0.000977) with N = 500.
        p = 0.25 ** 5
        chosen = pm.choose_parameters(p, 500)
        # The theory must not disagree wildly with the paper's hand-picked m.
        assert abs(chosen.m - 5) <= 2
        theirs = pm.TailParams(p=p, m=5, n_steps=(100,) * 5, p_steps=(0.25,) * 5)
        assert theirs.expected_msre() <= 2.0 * chosen.expected_msre()

    def test_equal_split_beats_unequal_splits(self):
        # Theorem 1 claims n_i = N/m, p_i = p^(1/m) is optimal for fixed m.
        p, total, m = 0.001, 900, 3
        opt = pm.msre([300] * 3, [p ** (1 / 3)] * 3, p)
        for n_steps, p_steps in [
            ([450, 300, 150], [p ** (1 / 3)] * 3),
            ([300] * 3, [0.2, 0.1, p / 0.02]),
            ([600, 200, 100], [0.05, 0.2, 0.1]),
        ]:
            assert abs(np.prod(p_steps) - p) < 1e-12
            assert sum(n_steps) == total
            assert pm.msre(n_steps, p_steps, p) >= opt - 1e-12

    def test_optimal_m_input_validation(self):
        with pytest.raises(ValueError):
            pm.optimal_m(1, 0.1, 1.0)
        with pytest.raises(ValueError):
            pm.optimal_m(100, 1.5, 1.0)


class TestChooseParameters:
    def test_constraints_satisfied(self):
        chosen = pm.choose_parameters(0.001, 1000)
        assert chosen.total_samples <= 1000
        assert np.prod(chosen.p_steps) == pytest.approx(0.001)
        assert len(set(chosen.n_steps)) == 1
        assert len(set(chosen.p_steps)) == 1
        assert all(e >= 1 for e in chosen.elite_counts)

    def test_single_step_when_p_moderate_and_budget_large(self):
        # For an easy 0.5-tail there is no reason to bootstrap.
        chosen = pm.choose_parameters(0.5, 1000)
        assert chosen.m == 1

    def test_more_extreme_p_needs_more_steps(self):
        budget = 2000
        m_values = [pm.choose_parameters(p, budget).m
                    for p in (0.1, 0.01, 0.001, 0.0001)]
        assert m_values == sorted(m_values)
        assert m_values[-1] > m_values[0]

    def test_choose_total_samples_hits_target(self):
        p = 0.001
        target = 0.05
        total = pm.choose_total_samples(p, target)
        assert pm.msre_of_total(total, p) <= target
        if total > 8:
            assert pm.msre_of_total(max(4, total // 2), p) > target

    def test_choose_total_samples_unreachable(self):
        with pytest.raises(ValueError, match="unreachable"):
            pm.choose_total_samples(1e-6, 1e-9, max_total=10_000)

    def test_choose_total_samples_bad_target(self):
        with pytest.raises(ValueError):
            pm.choose_total_samples(0.01, 0.0)

    def test_w_converges_to_zero(self):
        p = 0.001
        values = [pm.msre_of_total(n, p) for n in (2_000, 20_000, 200_000)]
        assert values == sorted(values, reverse=True)
        assert values[-1] < 0.01


class TestTailParamsValidation:
    def test_valid_params_accept(self):
        pm.TailParams(p=0.01, m=2, n_steps=(100, 100), p_steps=(0.1, 0.1))

    @pytest.mark.parametrize("kwargs", [
        dict(p=0.0, m=1, n_steps=(10,), p_steps=(0.5,)),
        dict(p=1.0, m=1, n_steps=(10,), p_steps=(0.5,)),
        dict(p=0.1, m=2, n_steps=(10,), p_steps=(0.5, 0.2)),
        dict(p=0.1, m=1, n_steps=(0,), p_steps=(0.5,)),
        dict(p=0.1, m=1, n_steps=(10,), p_steps=(0.0,)),
        dict(p=0.001, m=1, n_steps=(10,), p_steps=(0.001,)),  # 0 elites
    ])
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            pm.TailParams(**kwargs)

    def test_elite_counts(self):
        params = pm.TailParams(p=1 / 32, m=5, n_steps=(4,) * 5, p_steps=(0.5,) * 5)
        assert params.elite_counts == (2,) * 5
        assert params.total_samples == 20


class TestPerStepQuantile:
    def test_paper_example(self):
        # Sec. 3.3: p = 0.001, m = 4 -> each step estimates a ~0.82 quantile.
        assert pm.per_step_quantile(0.001, 4) == pytest.approx(0.822, abs=0.001)

    def test_m_one_recovers_full_quantile(self):
        assert pm.per_step_quantile(0.001, 1) == pytest.approx(0.999)

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            pm.per_step_quantile(0.01, 0)


class TestAppendixCNormalExample:
    def test_one_percent_tail_probability_is_tenth_percent_quantile_error(self):
        """App. C: for standard normal, p=0.001 => kappa ~ 3.090; a 1% tail
        probability deviation moves the quantile only ~0.1%."""
        kappa = stats.norm.ppf(1 - 0.001)
        assert kappa == pytest.approx(3.090, abs=0.001)
        low = stats.norm.ppf(1 - 0.001 * 1.01)
        high = stats.norm.ppf(1 - 0.001 * 0.99)
        assert low == pytest.approx(3.087, abs=0.001)
        assert high == pytest.approx(3.093, abs=0.001)
        assert abs(high - kappa) / kappa < 0.0015


@given(p=st.floats(1e-4, 0.5), total=st.integers(100, 5000))
@settings(max_examples=50, deadline=None)
def test_property_chosen_parameters_are_feasible(p, total):
    chosen = pm.choose_parameters(p, total)
    assert chosen.total_samples <= total
    assert np.prod(chosen.p_steps) == pytest.approx(p, rel=1e-9)
    assert all(n >= 2 for n in chosen.n_steps)
    assert all(e >= 1 for e in chosen.elite_counts)
    assert chosen.expected_msre() > 0


@given(n=st.integers(10, 2000), q=st.floats(0.05, 0.95), m=st.integers(1, 6))
@settings(max_examples=60, deadline=None)
def test_property_msre_equals_beta_moments(n, q, m):
    p = q ** m
    assert pm.msre([n] * m, [q] * m, p) == pytest.approx(
        pm.msre_beta_moments([n] * m, [q] * m, p), rel=1e-9)
