"""Unit tests for TS-seeds, Gibbs tuples and seed handles."""

import numpy as np
import pytest

from repro.core.gibbs_tuple import GibbsTuple, PresenceField, RandField, \
    tuples_from_relation
from repro.core.ts_seed import TSSeed
from repro.engine.bundles import BundleRelation, PresenceColumn, RandomColumn
from repro.engine.errors import PlanError
from repro.engine.seeds import SeedInfo, derive_prng_seed, label_id_of, \
    seed_handle
from repro.vg.builtin import NORMAL


def _info(handle=1, seed=42):
    return SeedInfo(handle=handle, prng_seed=seed, vg=NORMAL,
                    params=(0.0, 1.0))


class TestSeedHandles:
    def test_pack_unpack_disjoint(self):
        a = seed_handle(1, 0)
        b = seed_handle(1, 1)
        c = seed_handle(2, 0)
        assert len({a, b, c}) == 3
        assert b - a == 1

    def test_range_validation(self):
        with pytest.raises(ValueError):
            seed_handle(-1, 0)
        with pytest.raises(ValueError):
            seed_handle(1 << 20, 0)
        with pytest.raises(ValueError):
            seed_handle(0, 1 << 40)

    def test_label_id_stable(self):
        assert label_id_of("Losses") == label_id_of("Losses")
        assert label_id_of("Losses") != label_id_of("emp")

    def test_derive_prng_seed_spreads(self):
        seeds = {derive_prng_seed(0, handle) for handle in range(100)}
        assert len(seeds) == 100
        assert derive_prng_seed(1, 5) != derive_prng_seed(2, 5)


class TestSeedInfo:
    def test_scalar_values(self):
        info = _info()
        assert info.value(3) == info.value(3)
        np.testing.assert_allclose(
            info.values_range(2, 6), info.values_at([2, 3, 4, 5]))

    def test_block_values(self):
        from repro.vg.builtin import MULTIVARIATE_NORMAL
        info = SeedInfo(handle=2, prng_seed=9, vg=MULTIVARIATE_NORMAL,
                        params=(0.0, 0.0, 1.0, 0.5, 0.5, 1.0), arity=2)
        a = info.values_at([0, 1], component=0)
        b = info.values_at([0, 1], component=1)
        assert a.shape == b.shape == (2,)
        assert not np.allclose(a, b)


class TestTSSeed:
    def _seed(self, versions=4, window=10):
        return TSSeed.initial(_info(), np.arange(window), versions)

    def test_initial_mapping(self):
        ts = self._seed()
        np.testing.assert_array_equal(ts.assignment, [0, 1, 2, 3])
        assert ts.max_used == 3
        assert ts.fresh_index_range() == (4, 10)
        assert ts.has_fresh()

    def test_initial_window_too_small(self):
        with pytest.raises(ValueError, match="cannot seed"):
            TSSeed.initial(_info(), np.arange(3), 4)

    def test_consume_monotone(self):
        ts = self._seed()
        ts.consume_through(6)
        assert ts.fresh_index_range() == (7, 10)
        with pytest.raises(ValueError, match="already consumed"):
            ts.consume_through(5)

    def test_assign_and_clone(self):
        ts = self._seed()
        ts.assign(0, 7)
        ts.clone_versions(np.array([0, 0, 3, 3]))
        np.testing.assert_array_equal(ts.assignment, [7, 7, 3, 3])

    def test_clone_can_resize(self):
        ts = self._seed()
        ts.clone_versions(np.array([1, 1]))
        np.testing.assert_array_equal(ts.assignment, [1, 1])

    def test_replenish_plan_contains_assigned_and_fresh(self):
        ts = self._seed()
        ts.assign(2, 9)
        ts.consume_through(9)
        plan = ts.replenish_plan(fresh=5)
        assert set([0, 1, 9]).issubset(set(plan.tolist()))
        assert set(range(10, 15)).issubset(set(plan.tolist()))
        assert list(plan) == sorted(set(plan.tolist()))

    def test_replenish_plan_validation(self):
        with pytest.raises(ValueError):
            self._seed().replenish_plan(0)

    def test_pad_plan(self):
        ts = self._seed()
        plan = np.array([1, 5, 9])
        padded = ts.pad_plan(plan, 6)
        np.testing.assert_array_equal(padded, [1, 5, 9, 10, 11, 12])
        with pytest.raises(ValueError):
            ts.pad_plan(padded, 3)

    def test_index_of_position(self):
        ts = TSSeed.initial(_info(), np.array([2, 5, 9, 11]), 2)
        assert ts.index_of_position(9) == 2
        with pytest.raises(KeyError):
            ts.index_of_position(7)

    def test_value_at_uses_stream(self):
        ts = self._seed()
        assert ts.value_at(5) == _info().value(5)


class TestGibbsTuple:
    def _tuple(self):
        return GibbsTuple(
            tuple_id=0,
            det={"name": "Sue"},
            rand={
                "a": RandField("a", handle=10, values=np.zeros(4)),
                "b": RandField("b", handle=5, values=np.zeros(4)),
            },
            presences=[PresenceField(handle=7, flags=np.ones(4, dtype=bool))])

    def test_handles_sorted_and_distinct(self):
        assert self._tuple().handles == [5, 7, 10]

    def test_next_handle_after(self):
        t = self._tuple()
        assert t.next_handle_after(5) == 7
        assert t.next_handle_after(7) == 10
        assert t.next_handle_after(10) is None

    def test_columns_of_handle(self):
        t = self._tuple()
        assert t.columns_of_handle(10) == ["a"]
        assert t.columns_of_handle(99) == []

    def test_from_relation(self):
        relation = BundleRelation(2, 3, aligned=False)
        relation.add_det_column("k", np.array([7, 8]))
        relation.add_rand_column("x", RandomColumn(
            np.arange(6, dtype=float).reshape(2, 3),
            seed_handles=np.array([100, 101])))
        flags = np.array([[True, False, True], [True, True, True]])
        relation.add_presence(PresenceColumn(
            flags, seed_handles=np.array([100, 101])))
        tuples = tuples_from_relation(relation)
        assert len(tuples) == 2
        assert tuples[0].det["k"] == 7
        assert tuples[0].rand["x"].handle == 100
        # Row 1's presence is vacuous (all true) and gets dropped.
        assert len(tuples[0].presences) == 1
        assert len(tuples[1].presences) == 0

    def test_from_relation_rejects_derived(self):
        relation = BundleRelation(1, 2, aligned=False)
        relation.add_rand_column("d", RandomColumn(
            np.zeros((1, 2)), seed_handles=None))
        with pytest.raises(PlanError, match="mixes seeds"):
            tuples_from_relation(relation)

    def test_from_relation_rejects_aligned_presence(self):
        relation = BundleRelation(1, 2, aligned=False)
        relation.add_rand_column("x", RandomColumn(
            np.zeros((1, 2)), seed_handles=np.array([1])))
        relation.add_presence(PresenceColumn(
            np.array([[True, False]]), seed_handles=None))
        with pytest.raises(PlanError, match="single-seed"):
            tuples_from_relation(relation)
