"""The execution-backend layer: transports, pool lifecycle, payloads.

Three contracts pinned down here:

* **Results transparency** — ``run_job(job, bounds)`` returns exactly
  ``[job.run_shard(lo, hi) for lo, hi in bounds]`` on every backend (the
  bit-level equivalence of real query results lives in
  ``tests/test_engine_equivalence.py``).
* **Broadcast-once transport** — the per-shard task message is a
  constant-size ``(job_id, lo, hi)`` triple; the job payload is pickled
  once per query and the catalog once per ``(catalog, version)`` key.
  The payload regression tests keep the catalog from ever creeping back
  into per-task pickling.
* **Det-cache shard semantics** — workers are pre-warmed with a snapshot
  of the session cache at broadcast time; worker-local fills never flow
  back to the session.
"""

import pickle

import numpy as np
import pytest

from repro.engine.backends import (
    ProcessBackend, SerialBackend, ThreadBackend, catalog_share_key,
    make_backend)
from repro.engine.errors import EngineError
from repro.engine.expressions import col, lit
from repro.engine.mcdb import AggregateSpec, MonteCarloExecutor
from repro.engine.operators import Select, random_table_pipeline
from repro.engine.options import ExecutionOptions
from repro.engine.random_table import RandomColumnSpec, RandomTableSpec
from repro.engine.table import Catalog, Table
from repro.sql import Session
from repro.vg.builtin import NORMAL

BACKENDS = ("serial", "thread", "process")


class SpanJob:
    """Module-level so ProcessBackend can pickle it."""

    def run_shard(self, lo, hi):
        return list(range(lo, hi))


class FailingJob:
    def run_shard(self, lo, hi):
        raise ValueError(f"boom at {lo}")


class SharedArrayJob:
    """Exercises the keyed shared channel the catalog rides in production."""

    def __init__(self, key, array):
        self.key = key
        self.array = array

    def shared_payload(self):
        return {self.key: self.array}

    def __getstate__(self):
        state = self.__dict__.copy()
        state["array"] = None
        return state

    def attach_shared(self, shared):
        self.array = shared[self.key]

    def run_shard(self, lo, hi):
        return float(self.array[lo:hi].sum())


def _make_backend(name, n_workers=2):
    return make_backend(ExecutionOptions(n_jobs=n_workers, backend=name))


def _mc_executor(rows=12, options=None, det_cache=None):
    catalog = Catalog()
    catalog.add_table(Table("means", {
        "CID": np.arange(rows), "m": np.linspace(0.8, 3.5, rows)}))
    spec = RandomTableSpec(
        name="Losses", parameter_table="means", vg=NORMAL,
        vg_params=(col("m"), lit(1.0)),
        random_columns=(RandomColumnSpec("val"),),
        passthrough_columns=("CID",))
    plan = Select(random_table_pipeline(spec), col("val") > lit(1.0))
    aggregates = [AggregateSpec("total", "sum", col("val")),
                  AggregateSpec("n", "count")]
    return MonteCarloExecutor(plan, aggregates, catalog, base_seed=3,
                              options=options, det_cache=det_cache)


class TestShardBounds:
    """Edge geometry of ExecutionOptions.shard_bounds."""

    def test_fewer_repetitions_than_workers(self):
        bounds = ExecutionOptions(n_jobs=4).shard_bounds(3)
        assert bounds == [(0, 1), (1, 2), (2, 3)]

    def test_shard_size_larger_than_repetitions(self):
        bounds = ExecutionOptions(n_jobs=2, shard_size=500).shard_bounds(7)
        assert bounds == [(0, 7)]

    def test_shard_size_one(self):
        bounds = ExecutionOptions(n_jobs=2, shard_size=1).shard_bounds(4)
        assert bounds == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_single_repetition(self):
        assert ExecutionOptions(n_jobs=8).shard_bounds(1) == [(0, 1)]

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError, match="repetitions"):
            ExecutionOptions(n_jobs=2).shard_bounds(0)

    def test_bounds_cover_and_tile(self):
        for n_jobs, shard_size, repetitions in [(3, None, 100), (5, 7, 23),
                                                (2, 1, 9), (7, None, 5)]:
            bounds = ExecutionOptions(
                n_jobs=n_jobs, shard_size=shard_size).shard_bounds(repetitions)
            assert bounds[0][0] == 0 and bounds[-1][1] == repetitions
            assert all(hi == next_lo for (_, hi), (next_lo, _)
                       in zip(bounds, bounds[1:]))


class TestOptionsValidation:
    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExecutionOptions(backend="quantum")

    def test_window_growth_below_one(self):
        with pytest.raises(ValueError, match="window_growth"):
            ExecutionOptions(window_growth=0.5)

    def test_window_growth_nan(self):
        with pytest.raises(ValueError, match="window_growth"):
            ExecutionOptions(window_growth=float("nan"))

    def test_make_backend_dispatch(self):
        assert isinstance(_make_backend("serial"), SerialBackend)
        assert isinstance(_make_backend("thread"), ThreadBackend)
        assert isinstance(_make_backend("process"), ProcessBackend)


class TestResultsTransparency:
    """run_job == the serial loop, on every transport."""

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_results_in_bounds_order(self, backend_name):
        bounds = [(0, 3), (3, 5), (5, 11), (11, 12)]
        with _make_backend(backend_name, 2) as backend:
            results = backend.run_job(SpanJob(), bounds)
        assert results == [list(range(lo, hi)) for lo, hi in bounds]

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_single_bound_runs_inline(self, backend_name):
        with _make_backend(backend_name, 2) as backend:
            assert backend.run_job(SpanJob(), [(2, 5)]) == [[2, 3, 4]]

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_empty_bounds(self, backend_name):
        with _make_backend(backend_name, 2) as backend:
            assert backend.run_job(SpanJob(), []) == []

    def test_more_bounds_than_workers(self):
        bounds = [(i, i + 1) for i in range(17)]
        with _make_backend("process", 3) as backend:
            results = backend.run_job(SpanJob(), bounds)
        assert results == [[i] for i in range(17)]


class TestProcessPoolLifecycle:
    def test_workers_persist_across_jobs(self):
        backend = ProcessBackend(2)
        try:
            backend.run_job(SpanJob(), [(0, 1), (1, 2)])
            pids = backend.worker_pids()
            backend.run_job(SpanJob(), [(0, 2), (2, 4), (4, 6)])
            assert backend.worker_pids() == pids
            assert backend.stats["spawns"] == 2
            assert backend.stats["jobs"] == 2
        finally:
            backend.close()
        assert backend.workers_alive == 0

    def test_close_is_idempotent_and_pool_respawns(self):
        backend = ProcessBackend(2)
        backend.run_job(SpanJob(), [(0, 1), (1, 2)])
        backend.close()
        backend.close()
        assert backend.run_job(SpanJob(), [(0, 1), (1, 2)]) == [[0], [1]]
        assert backend.stats["spawns"] == 4
        backend.close()

    def test_dead_worker_surfaces_as_engine_error(self):
        """A worker killed between jobs (OOM, crash) must surface as the
        contract's EngineError — not a bare BrokenPipeError — and the
        next job must respawn a clean pool."""
        backend = ProcessBackend(2)
        try:
            backend.run_job(SpanJob(), [(0, 1), (1, 2)])
            backend._workers[0].process.terminate()
            backend._workers[0].process.join()
            with pytest.raises(EngineError, match="worker process died"):
                backend.run_job(SpanJob(), [(0, 1), (1, 2)])
            assert backend.workers_alive == 0
            assert backend.run_job(SpanJob(), [(0, 1), (1, 2)]) == [[0], [1]]
        finally:
            backend.close()

    def test_interrupt_mid_dispatch_resets_pool(self, monkeypatch):
        """A BaseException escaping mid-dispatch (Ctrl-C) must reset the
        pool: the in-flight shard replies of the aborted job would
        otherwise be consumed as the *next* job's results."""
        backend = ProcessBackend(2)
        try:
            backend.run_job(SpanJob(), [(0, 1), (1, 2)])  # warm pool
            original = ProcessBackend._dispatch

            def interrupted(self, active, job_id, bounds):
                # Dispatch every task but collect no replies — the moment
                # Ctrl-C lands, shard results are in flight on the pipes.
                for index, (lo, hi) in enumerate(bounds):
                    active[index % len(active)].conn.send(
                        self.task_message(job_id, index, lo, hi))
                raise KeyboardInterrupt

            monkeypatch.setattr(ProcessBackend, "_dispatch", interrupted)
            with pytest.raises(KeyboardInterrupt):
                backend.run_job(SpanJob(), [(5, 6), (6, 7)])
            monkeypatch.setattr(ProcessBackend, "_dispatch", original)
            assert backend.workers_alive == 0  # pool reset, replies gone
            assert backend.run_job(SpanJob(), [(0, 2), (2, 3)]) == \
                [[0, 1], [2]]
        finally:
            backend.close()

    def test_worker_error_propagates_and_resets_pool(self):
        backend = ProcessBackend(2)
        try:
            with pytest.raises(EngineError, match="boom at"):
                backend.run_job(FailingJob(), [(0, 1), (1, 2)])
            assert backend.workers_alive == 0  # pool reset, no stale replies
            # ... and the backend remains usable afterwards.
            assert backend.run_job(SpanJob(), [(0, 2), (2, 3)]) == [[0, 1], [2]]
        finally:
            backend.close()


class TestSharedChannel:
    """Keyed broadcast: pickle once per key, send once per worker."""

    def test_shared_object_pickled_once_across_jobs(self):
        array = np.arange(64, dtype=np.float64)
        key = ("array", 1)
        backend = ProcessBackend(2)
        try:
            for _ in range(3):
                results = backend.run_job(
                    SharedArrayJob(key, array), [(0, 32), (32, 64)])
                assert results == [float(array[:32].sum()),
                                   float(array[32:].sum())]
            assert backend.stats["shared_pickles"] == 1
            assert backend.stats["shared_sends"] == 2  # once per worker
        finally:
            backend.close()

    def test_new_key_rebroadcasts(self):
        array = np.arange(16, dtype=np.float64)
        backend = ProcessBackend(2)
        try:
            backend.run_job(SharedArrayJob(("array", 1), array),
                            [(0, 8), (8, 16)])
            backend.run_job(SharedArrayJob(("array", 2), array + 1),
                            [(0, 8), (8, 16)])
            assert backend.stats["shared_pickles"] == 2
            assert backend.stats["shared_sends"] == 4
        finally:
            backend.close()

    def test_catalog_share_key_tracks_version(self):
        catalog = Catalog()
        catalog.add_table(Table("t", {"x": [1.0]}))
        before = catalog_share_key(catalog)
        catalog.add_table(Table("u", {"y": [2.0]}))
        after = catalog_share_key(catalog)
        assert before != after
        assert catalog_share_key(catalog) == after  # stable while unmutated


class TestPayloadRegression:
    """Shard tasks must never regrow a catalog payload.

    The seed implementation pickled ``(executor, lo, hi)`` — catalog,
    plan and det cache — once per shard task.  The backend transport
    pins: task messages are constant-size triples, the broadcast job
    excludes the catalog (it rides the keyed shared channel), and the
    stats the scaling benchmark reports reflect that.
    """

    def test_task_message_is_tiny_and_catalog_free(self):
        executor = _mc_executor(rows=50_000)
        task = ProcessBackend.task_message(7, 0, 0, 25)
        task_bytes = len(pickle.dumps(task, pickle.HIGHEST_PROTOCOL))
        catalog_bytes = len(pickle.dumps(executor.catalog,
                                         pickle.HIGHEST_PROTOCOL))
        assert task_bytes < 100
        assert catalog_bytes > 100_000
        assert task == ("run", 7, 0, 0, 25)  # integers only, nothing rides

    def test_broadcast_job_excludes_catalog(self):
        executor = _mc_executor(rows=50_000)
        job_bytes = len(pickle.dumps(executor, pickle.HIGHEST_PROTOCOL))
        catalog_bytes = len(pickle.dumps(executor.catalog,
                                         pickle.HIGHEST_PROTOCOL))
        assert job_bytes < catalog_bytes / 10
        restored = pickle.loads(pickle.dumps(executor,
                                             pickle.HIGHEST_PROTOCOL))
        assert restored.catalog is None
        with pytest.raises(EngineError, match="no catalog bound"):
            restored.run_shard(0, 4)
        restored.attach_shared(
            {catalog_share_key(executor.catalog): executor.catalog})
        result = restored.run_shard(0, 4)
        np.testing.assert_array_equal(
            result.distribution("total").samples,
            executor.run_shard(0, 4).distribution("total").samples)

    def test_end_to_end_transport_sizes(self):
        executor = _mc_executor(rows=20_000,
                                options=ExecutionOptions(n_jobs=2))
        backend = ProcessBackend(2)
        executor.backend = backend
        try:
            executor.run(50)
            catalog_bytes = len(pickle.dumps(executor.catalog,
                                             pickle.HIGHEST_PROTOCOL))
            assert backend.stats["task_bytes"] < 100
            assert backend.stats["job_bytes"] < catalog_bytes / 10
            assert backend.stats["shared_pickles"] == 1
        finally:
            backend.close()


class TestDetCacheShardSemantics:
    """Worker caches are snapshots: pre-warmed at broadcast, never merged."""

    CREATE = """
        CREATE TABLE Losses (CID, val) AS
        FOR EACH CID IN means
        WITH myVal AS Normal(VALUES(m, 1.0))
        SELECT CID, myVal.* FROM myVal
    """
    MC_QUERY = """
        SELECT SUM(val) AS loss FROM Losses
        WITH RESULTDISTRIBUTION MONTECARLO(60)
    """
    TAIL_QUERY = """
        SELECT SUM(val) AS loss FROM Losses WHERE CID < 12
        WITH RESULTDISTRIBUTION MONTECARLO(30)
        DOMAIN loss >= QUANTILE(0.9)
    """

    def _session(self, options=None):
        session = Session(base_seed=11, tail_budget=200, window=150,
                          options=options)
        session.add_table("means", {
            "CID": np.arange(15), "m": np.linspace(1.0, 3.0, 15)})
        session.execute(self.CREATE)
        return session

    def test_worker_fills_do_not_flow_back_under_process(self):
        with self._session(ExecutionOptions(n_jobs=2)) as session:
            session.execute(self.MC_QUERY)
            # Every shard ran in a worker process; the workers
            # materialized the deterministic subtrees in their local
            # snapshots, and none of those fills came back.
            assert len(session.det_cache) == 0
        serial = self._session()
        serial.execute(self.MC_QUERY)
        assert len(serial.det_cache) > 0

    def test_thread_shards_share_the_live_session_cache(self):
        """The thread transport has the opposite — also intended —
        semantics: shards hold the session cache by reference, so their
        fills persist and later queries hit them."""
        with self._session(ExecutionOptions(
                n_jobs=2, backend="thread")) as session:
            session.execute(self.MC_QUERY)
            assert len(session.det_cache) > 0
            session.det_cache.hits = 0
            session.execute(self.MC_QUERY)
            assert session.det_cache.hits > 0

    def test_broadcast_carries_session_cache_snapshot(self):
        with self._session(ExecutionOptions(n_jobs=2)) as session:
            session.execute(self.TAIL_QUERY)  # tail runs fill the cache
            filled = len(session.det_cache)
            assert filled > 0
            from repro.sql.planner import compile_select, monte_carlo_executor
            from repro.sql.parser import parse
            compiled = compile_select(parse(self.MC_QUERY), session.catalog,
                                      tail_mode=False)
            executor = monte_carlo_executor(
                compiled, session.catalog, base_seed=session.base_seed,
                options=session.options, det_cache=session.det_cache)
            broadcast = pickle.loads(pickle.dumps(executor,
                                                  pickle.HIGHEST_PROTOCOL))
            # The worker-side copy is pre-warmed with the whole snapshot…
            assert len(broadcast.det_cache) == filled
            # …and filling it there leaves the session cache untouched.
            broadcast.attach_shared(
                {catalog_share_key(session.catalog): session.catalog})
            broadcast.run_shard(0, 5)
            assert len(session.det_cache) == filled


class TestSessionPoolLifecycle:
    CREATE = TestDetCacheShardSemantics.CREATE
    MC_QUERY = TestDetCacheShardSemantics.MC_QUERY

    def _session(self, options):
        session = Session(base_seed=7, options=options)
        session.add_table("means", {
            "CID": np.arange(10), "m": np.linspace(1.0, 2.0, 10)})
        session.execute(self.CREATE)
        return session

    def test_pool_spawns_lazily_and_persists(self):
        session = self._session(ExecutionOptions(n_jobs=2))
        assert session.backend is None  # nothing sharded yet
        session.execute(self.MC_QUERY)
        backend = session.backend
        assert backend is not None and backend.workers_alive == 2
        session.execute(self.MC_QUERY)
        assert session.backend is backend  # reused, not respawned
        assert backend.stats["spawns"] == 2
        session.close()
        assert session.backend is None and backend.workers_alive == 0

    def test_context_manager_closes_pool(self):
        with self._session(ExecutionOptions(n_jobs=2)) as session:
            session.execute(self.MC_QUERY)
            backend = session.backend
            assert backend.workers_alive == 2
        assert backend.workers_alive == 0

    def test_session_usable_after_close(self):
        session = self._session(ExecutionOptions(n_jobs=2))
        first = session.execute(self.MC_QUERY)
        session.close()
        second = session.execute(self.MC_QUERY)  # respawns transparently
        np.testing.assert_array_equal(
            first.distributions.distribution("loss").samples,
            second.distributions.distribution("loss").samples)
        session.close()

    def test_unsharded_session_never_builds_a_pool(self):
        session = self._session(ExecutionOptions(n_jobs=1))
        session.execute(self.MC_QUERY)
        assert session.backend is None
        session.close()
