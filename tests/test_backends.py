"""The execution-backend layer: transports, pool lifecycle, payloads.

Four contracts pinned down here:

* **Results transparency** — ``run_job(job, bounds)`` returns exactly
  ``[job.run_shard(lo, hi) for lo, hi in bounds]`` on every backend (the
  bit-level equivalence of real query results lives in
  ``tests/test_engine_equivalence.py``).
* **Broadcast-once transport** — the per-shard task message is a
  constant-size ``(job_id, lo, hi)`` triple; the job payload is pickled
  once per query and the catalog once per ``(catalog, version)`` key.
  The payload regression tests keep the catalog from ever creeping back
  into per-task pickling.
* **Det-cache shard semantics** — workers are pre-warmed with a snapshot
  of the session cache at broadcast time; worker-local fills never flow
  back to the session.
* **Worker-owned state** — the stateful Gibbs protocol: state ships once
  at ``init_state`` and evolves only through notifications; per-sweep
  traffic is commit messages, never snapshot re-ships; any worker death
  or in-state error tears the pool down into a clean ``EngineError``
  carrying the worker traceback, discarding is a stale-reply drain
  barrier, and no state survives ``close()`` or a ``Catalog.version``
  bump — a fresh query on the same session respawns workers with fresh
  state (no hang, no stale replies).
"""

import multiprocessing
import os
import pickle
import signal

import numpy as np
import pytest

from repro.core.gibbs_looper import GibbsLooper
from repro.core.params import TailParams
from repro.engine.backends import (
    ProcessBackend, SerialBackend, ThreadBackend, catalog_share_key,
    make_backend)
from repro.engine.errors import EngineError
from repro.engine.expressions import col, lit
from repro.engine.mcdb import AggregateSpec, MonteCarloExecutor
from repro.engine.operators import Select, random_table_pipeline
from repro.engine.options import ExecutionOptions
from repro.engine.random_table import RandomColumnSpec, RandomTableSpec
from repro.engine.shm import leaked_segments
from repro.engine.table import Catalog, Table
from repro.sql import Session
from repro.vg.builtin import NORMAL

BACKENDS = ("serial", "thread", "process")


class SpanJob:
    """Module-level so ProcessBackend can pickle it."""

    def run_shard(self, lo, hi):
        return list(range(lo, hi))


class FailingJob:
    def run_shard(self, lo, hi):
        raise ValueError(f"boom at {lo}")


class LedgerState:
    """Stateful payload for the worker-owned-state protocol tests."""

    def __init__(self, label, entries):
        self.label = label
        self.entries = list(entries)

    def record(self, *values):          # notification target
        self.entries.extend(values)

    def total(self):                    # synchronous-call target
        return (self.label, sum(self.entries))

    def span(self, lo, hi):             # scatter target
        return (self.label, list(self.entries[lo:hi]))


class ExplodingState:
    def boom(self):
        raise ValueError("state op exploded")

    def ok(self):
        return "fine"


class SuicidalState:
    """Simulates a worker lost to the OS (OOM kill, crash) mid-operation."""

    def die(self):
        os.kill(os.getpid(), signal.SIGKILL)

    def ok(self):
        return "alive"


class UnpicklableState:
    """Pickles fine parent-side, explodes when the worker unpickles it."""

    def __init__(self):
        self.payload = "present"  # non-empty state so __setstate__ runs

    def __setstate__(self, state):
        raise RuntimeError("worker-side unpickle exploded")

    def ok(self):
        return "fine"


class SharedArrayJob:
    """Exercises the keyed shared channel the catalog rides in production."""

    def __init__(self, key, array):
        self.key = key
        self.array = array

    def shared_payload(self):
        return {self.key: self.array}

    def __getstate__(self):
        state = self.__dict__.copy()
        state["array"] = None
        return state

    def attach_shared(self, shared):
        self.array = shared[self.key]

    def run_shard(self, lo, hi):
        return float(self.array[lo:hi].sum())


def _make_backend(name, n_workers=2):
    return make_backend(ExecutionOptions(n_jobs=n_workers, backend=name))


def _mc_executor(rows=12, options=None, det_cache=None):
    catalog = Catalog()
    catalog.add_table(Table("means", {
        "CID": np.arange(rows), "m": np.linspace(0.8, 3.5, rows)}))
    spec = RandomTableSpec(
        name="Losses", parameter_table="means", vg=NORMAL,
        vg_params=(col("m"), lit(1.0)),
        random_columns=(RandomColumnSpec("val"),),
        passthrough_columns=("CID",))
    plan = Select(random_table_pipeline(spec), col("val") > lit(1.0))
    aggregates = [AggregateSpec("total", "sum", col("val")),
                  AggregateSpec("n", "count")]
    return MonteCarloExecutor(plan, aggregates, catalog, base_seed=3,
                              options=options, det_cache=det_cache)


class TestShardBounds:
    """Edge geometry of ExecutionOptions.shard_bounds."""

    def test_fewer_repetitions_than_workers(self):
        bounds = ExecutionOptions(n_jobs=4).shard_bounds(3)
        assert bounds == [(0, 1), (1, 2), (2, 3)]

    def test_shard_size_larger_than_repetitions(self):
        bounds = ExecutionOptions(n_jobs=2, shard_size=500).shard_bounds(7)
        assert bounds == [(0, 7)]

    def test_shard_size_one(self):
        bounds = ExecutionOptions(n_jobs=2, shard_size=1).shard_bounds(4)
        assert bounds == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_single_repetition(self):
        assert ExecutionOptions(n_jobs=8).shard_bounds(1) == [(0, 1)]

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError, match="repetitions"):
            ExecutionOptions(n_jobs=2).shard_bounds(0)

    def test_bounds_cover_and_tile(self):
        for n_jobs, shard_size, repetitions in [(3, None, 100), (5, 7, 23),
                                                (2, 1, 9), (7, None, 5)]:
            bounds = ExecutionOptions(
                n_jobs=n_jobs, shard_size=shard_size).shard_bounds(repetitions)
            assert bounds[0][0] == 0 and bounds[-1][1] == repetitions
            assert all(hi == next_lo for (_, hi), (next_lo, _)
                       in zip(bounds, bounds[1:]))


class TestOptionsValidation:
    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExecutionOptions(backend="quantum")

    def test_window_growth_below_one(self):
        with pytest.raises(ValueError, match="window_growth"):
            ExecutionOptions(window_growth=0.5)

    def test_window_growth_nan(self):
        with pytest.raises(ValueError, match="window_growth"):
            ExecutionOptions(window_growth=float("nan"))

    def test_make_backend_dispatch(self):
        assert isinstance(_make_backend("serial"), SerialBackend)
        assert isinstance(_make_backend("thread"), ThreadBackend)
        assert isinstance(_make_backend("process"), ProcessBackend)

    @pytest.mark.parametrize("bad", [0, -1.0, float("nan")])
    def test_join_timeout_must_be_positive(self, bad):
        with pytest.raises(ValueError, match="join_timeout"):
            ProcessBackend(1, join_timeout=bad)
        with pytest.raises(ValueError, match="join_timeout"):
            ExecutionOptions(join_timeout=bad)

    def test_join_timeout_flows_from_options_to_backend(self):
        backend = make_backend(
            ExecutionOptions(backend="process", join_timeout=2.5))
        try:
            assert backend._join_timeout == 2.5
        finally:
            backend.close()

    def test_join_timeout_defaults_to_module_global(self):
        # None defers to backends._JOIN_TIMEOUT at close() time so test
        # suites that monkeypatch the global keep their grip.
        backend = make_backend(ExecutionOptions(backend="process"))
        try:
            assert backend._join_timeout is None
        finally:
            backend.close()


class TestResultsTransparency:
    """run_job == the serial loop, on every transport."""

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_results_in_bounds_order(self, backend_name):
        bounds = [(0, 3), (3, 5), (5, 11), (11, 12)]
        with _make_backend(backend_name, 2) as backend:
            results = backend.run_job(SpanJob(), bounds)
        assert results == [list(range(lo, hi)) for lo, hi in bounds]

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_single_bound_runs_inline(self, backend_name):
        with _make_backend(backend_name, 2) as backend:
            assert backend.run_job(SpanJob(), [(2, 5)]) == [[2, 3, 4]]

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_empty_bounds(self, backend_name):
        with _make_backend(backend_name, 2) as backend:
            assert backend.run_job(SpanJob(), []) == []

    def test_more_bounds_than_workers(self):
        bounds = [(i, i + 1) for i in range(17)]
        with _make_backend("process", 3) as backend:
            results = backend.run_job(SpanJob(), bounds)
        assert results == [[i] for i in range(17)]


class TestProcessPoolLifecycle:
    def test_workers_persist_across_jobs(self):
        backend = ProcessBackend(2)
        try:
            backend.run_job(SpanJob(), [(0, 1), (1, 2)])
            pids = backend.worker_pids()
            backend.run_job(SpanJob(), [(0, 2), (2, 4), (4, 6)])
            assert backend.worker_pids() == pids
            assert backend.stats["spawns"] == 2
            assert backend.stats["jobs"] == 2
        finally:
            backend.close()
        assert backend.workers_alive == 0

    def test_close_is_idempotent_and_pool_respawns(self):
        backend = ProcessBackend(2)
        backend.run_job(SpanJob(), [(0, 1), (1, 2)])
        backend.close()
        backend.close()
        assert backend.run_job(SpanJob(), [(0, 1), (1, 2)]) == [[0], [1]]
        assert backend.stats["spawns"] == 4
        backend.close()

    def test_dead_worker_surfaces_as_engine_error(self):
        """A worker killed between jobs (OOM, crash) must surface as the
        contract's EngineError — not a bare BrokenPipeError — and the
        next job must respawn a clean pool."""
        backend = ProcessBackend(2)
        try:
            backend.run_job(SpanJob(), [(0, 1), (1, 2)])
            backend._workers[0].process.terminate()
            backend._workers[0].process.join()
            with pytest.raises(EngineError, match="worker process died"):
                backend.run_job(SpanJob(), [(0, 1), (1, 2)])
            assert backend.workers_alive == 0
            assert backend.run_job(SpanJob(), [(0, 1), (1, 2)]) == [[0], [1]]
        finally:
            backend.close()

    def test_interrupt_mid_dispatch_resets_pool(self, monkeypatch):
        """A BaseException escaping mid-dispatch (Ctrl-C) must reset the
        pool: the in-flight shard replies of the aborted job would
        otherwise be consumed as the *next* job's results."""
        backend = ProcessBackend(2)
        try:
            backend.run_job(SpanJob(), [(0, 1), (1, 2)])  # warm pool
            original = ProcessBackend._dispatch

            def interrupted(self, active, job_id, bounds):
                # Dispatch every task but collect no replies — the moment
                # Ctrl-C lands, shard results are in flight on the pipes.
                for index, (lo, hi) in enumerate(bounds):
                    active[index % len(active)].conn.send(
                        self.task_message(job_id, index, lo, hi))
                raise KeyboardInterrupt

            monkeypatch.setattr(ProcessBackend, "_dispatch", interrupted)
            with pytest.raises(KeyboardInterrupt):
                backend.run_job(SpanJob(), [(5, 6), (6, 7)])
            monkeypatch.setattr(ProcessBackend, "_dispatch", original)
            assert backend.workers_alive == 0  # pool reset, replies gone
            assert backend.run_job(SpanJob(), [(0, 2), (2, 3)]) == \
                [[0, 1], [2]]
        finally:
            backend.close()

    def test_worker_error_propagates_and_resets_pool(self):
        backend = ProcessBackend(2)
        try:
            with pytest.raises(EngineError, match="boom at"):
                backend.run_job(FailingJob(), [(0, 1), (1, 2)])
            assert backend.workers_alive == 0  # pool reset, no stale replies
            # ... and the backend remains usable afterwards.
            assert backend.run_job(SpanJob(), [(0, 2), (2, 3)]) == [[0, 1], [2]]
        finally:
            backend.close()


class TestSharedChannel:
    """Keyed broadcast: pickle once per key, send once per worker."""

    def test_shared_object_pickled_once_across_jobs(self):
        array = np.arange(64, dtype=np.float64)
        key = ("array", 1)
        backend = ProcessBackend(2)
        try:
            for _ in range(3):
                results = backend.run_job(
                    SharedArrayJob(key, array), [(0, 32), (32, 64)])
                assert results == [float(array[:32].sum()),
                                   float(array[32:].sum())]
            assert backend.stats["shared_pickles"] == 1
            assert backend.stats["shared_sends"] == 2  # once per worker
        finally:
            backend.close()

    def test_new_key_rebroadcasts(self):
        array = np.arange(16, dtype=np.float64)
        backend = ProcessBackend(2)
        try:
            backend.run_job(SharedArrayJob(("array", 1), array),
                            [(0, 8), (8, 16)])
            backend.run_job(SharedArrayJob(("array", 2), array + 1),
                            [(0, 8), (8, 16)])
            assert backend.stats["shared_pickles"] == 2
            assert backend.stats["shared_sends"] == 4
        finally:
            backend.close()

    def test_catalog_share_key_tracks_version(self):
        catalog = Catalog()
        catalog.add_table(Table("t", {"x": [1.0]}))
        before = catalog_share_key(catalog)
        catalog.add_table(Table("u", {"y": [2.0]}))
        after = catalog_share_key(catalog)
        assert before != after
        assert catalog_share_key(catalog) == after  # stable while unmutated

    def test_catalog_share_key_never_aliases_across_catalogs(self):
        """Two distinct catalogs at the same version must never share a
        key.  The seed keyed on ``id(catalog)``, which CPython recycles
        the moment a catalog is garbage-collected — a stale worker-side
        cache entry could then serve the *old* catalog's columns for a
        brand-new catalog.  ``Catalog.uid`` is monotone per process, so
        recycled addresses can't collide."""
        def build():
            catalog = Catalog()
            catalog.add_table(Table("t", {"x": [1.0]}))
            return catalog

        first = build()
        first_key = catalog_share_key(first)
        del first  # frees the address for recycling
        second = build()
        assert catalog_share_key(second) != first_key
        # Same catalog, same version: the key is a pure function of
        # (uid, version), not of object identity at call time.
        assert catalog_share_key(second) == catalog_share_key(second)


class TestPayloadRegression:
    """Shard tasks must never regrow a catalog payload.

    The seed implementation pickled ``(executor, lo, hi)`` — catalog,
    plan and det cache — once per shard task.  The backend transport
    pins: task messages are constant-size triples, the broadcast job
    excludes the catalog (it rides the keyed shared channel), and the
    stats the scaling benchmark reports reflect that.
    """

    def test_task_message_is_tiny_and_catalog_free(self):
        executor = _mc_executor(rows=50_000)
        task = ProcessBackend.task_message(7, 0, 0, 25)
        task_bytes = len(pickle.dumps(task, pickle.HIGHEST_PROTOCOL))
        catalog_bytes = len(pickle.dumps(executor.catalog,
                                         pickle.HIGHEST_PROTOCOL))
        assert task_bytes < 100
        assert catalog_bytes > 100_000
        assert task == ("run", 7, 0, 0, 25)  # integers only, nothing rides

    @pytest.mark.slow
    def test_broadcast_job_excludes_catalog(self):
        executor = _mc_executor(rows=50_000)
        job_bytes = len(pickle.dumps(executor, pickle.HIGHEST_PROTOCOL))
        catalog_bytes = len(pickle.dumps(executor.catalog,
                                         pickle.HIGHEST_PROTOCOL))
        assert job_bytes < catalog_bytes / 10
        restored = pickle.loads(pickle.dumps(executor,
                                             pickle.HIGHEST_PROTOCOL))
        assert restored.catalog is None
        with pytest.raises(EngineError, match="no catalog bound"):
            restored.run_shard(0, 4)
        restored.attach_shared(
            {catalog_share_key(executor.catalog): executor.catalog})
        result = restored.run_shard(0, 4)
        np.testing.assert_array_equal(
            result.distribution("total").samples,
            executor.run_shard(0, 4).distribution("total").samples)

    @pytest.mark.slow
    def test_end_to_end_transport_sizes(self):
        executor = _mc_executor(rows=20_000,
                                options=ExecutionOptions(n_jobs=2))
        backend = ProcessBackend(2)
        executor.backend = backend
        try:
            executor.run(50)
            catalog_bytes = len(pickle.dumps(executor.catalog,
                                             pickle.HIGHEST_PROTOCOL))
            assert backend.stats["task_bytes"] < 100
            assert backend.stats["job_bytes"] < catalog_bytes / 10
            assert backend.stats["shared_pickles"] == 1
        finally:
            backend.close()


class TestDetCacheShardSemantics:
    """Worker caches are snapshots: pre-warmed at broadcast, never merged."""

    CREATE = """
        CREATE TABLE Losses (CID, val) AS
        FOR EACH CID IN means
        WITH myVal AS Normal(VALUES(m, 1.0))
        SELECT CID, myVal.* FROM myVal
    """
    MC_QUERY = """
        SELECT SUM(val) AS loss FROM Losses
        WITH RESULTDISTRIBUTION MONTECARLO(60)
    """
    TAIL_QUERY = """
        SELECT SUM(val) AS loss FROM Losses WHERE CID < 12
        WITH RESULTDISTRIBUTION MONTECARLO(30)
        DOMAIN loss >= QUANTILE(0.9)
    """

    def _session(self, options=None):
        session = Session(base_seed=11, tail_budget=200, window=150,
                          options=options)
        session.add_table("means", {
            "CID": np.arange(15), "m": np.linspace(1.0, 3.0, 15)})
        session.execute(self.CREATE)
        return session

    def test_worker_fills_do_not_flow_back_under_process(self):
        with self._session(ExecutionOptions(n_jobs=2)) as session:
            session.execute(self.MC_QUERY)
            # Every shard ran in a worker process; the workers
            # materialized the deterministic subtrees in their local
            # snapshots, and none of those fills came back.
            assert len(session.det_cache) == 0
        serial = self._session()
        serial.execute(self.MC_QUERY)
        assert len(serial.det_cache) > 0

    def test_thread_shards_share_the_live_session_cache(self):
        """The thread transport has the opposite — also intended —
        semantics: shards hold the session cache by reference, so their
        fills persist and later queries hit them."""
        with self._session(ExecutionOptions(
                n_jobs=2, backend="thread")) as session:
            session.execute(self.MC_QUERY)
            assert len(session.det_cache) > 0
            session.det_cache.hits = 0
            session.execute(self.MC_QUERY)
            assert session.det_cache.hits > 0

    def test_broadcast_carries_session_cache_snapshot(self):
        with self._session(ExecutionOptions(n_jobs=2)) as session:
            session.execute(self.TAIL_QUERY)  # tail runs fill the cache
            filled = len(session.det_cache)
            assert filled > 0
            from repro.sql.planner import compile_select, monte_carlo_executor
            from repro.sql.parser import parse
            compiled = compile_select(parse(self.MC_QUERY), session.catalog,
                                      tail_mode=False)
            executor = monte_carlo_executor(
                compiled, session.catalog, base_seed=session.base_seed,
                options=session.options, det_cache=session.det_cache)
            broadcast = pickle.loads(pickle.dumps(executor,
                                                  pickle.HIGHEST_PROTOCOL))
            # The worker-side copy is pre-warmed with the whole snapshot…
            assert len(broadcast.det_cache) == filled
            # …and filling it there leaves the session cache untouched.
            broadcast.attach_shared(
                {catalog_share_key(session.catalog): session.catalog})
            broadcast.run_shard(0, 5)
            assert len(session.det_cache) == filled


class TestSessionPoolLifecycle:
    CREATE = TestDetCacheShardSemantics.CREATE
    MC_QUERY = TestDetCacheShardSemantics.MC_QUERY

    def _session(self, options):
        session = Session(base_seed=7, options=options)
        session.add_table("means", {
            "CID": np.arange(10), "m": np.linspace(1.0, 2.0, 10)})
        session.execute(self.CREATE)
        return session

    def test_pool_spawns_lazily_and_persists(self):
        session = self._session(ExecutionOptions(n_jobs=2))
        assert session.backend is None  # nothing sharded yet
        session.execute(self.MC_QUERY)
        backend = session.backend
        assert backend is not None and backend.workers_alive == 2
        session.execute(self.MC_QUERY)
        assert session.backend is backend  # reused, not respawned
        assert backend.stats["spawns"] == 2
        session.close()
        assert session.backend is None and backend.workers_alive == 0

    def test_context_manager_closes_pool(self):
        with self._session(ExecutionOptions(n_jobs=2)) as session:
            session.execute(self.MC_QUERY)
            backend = session.backend
            assert backend.workers_alive == 2
        assert backend.workers_alive == 0

    def test_session_usable_after_close(self):
        session = self._session(ExecutionOptions(n_jobs=2))
        first = session.execute(self.MC_QUERY)
        session.close()
        second = session.execute(self.MC_QUERY)  # respawns transparently
        np.testing.assert_array_equal(
            first.distributions.distribution("loss").samples,
            second.distributions.distribution("loss").samples)
        session.close()

    def test_unsharded_session_never_builds_a_pool(self):
        session = self._session(ExecutionOptions(n_jobs=1))
        session.execute(self.MC_QUERY)
        assert session.backend is None
        session.close()


def _tail_looper(backend=None, n_jobs=2, gibbs_state="worker",
                 customers=24, window=4000, versions=40, num_samples=20,
                 m=2, k=2, p_step=0.2, base_seed=9, backend_name="process",
                 state_reinit="delta", speculate_followups=True):
    """A rejection-heavy, replenishment-free Gibbs workload.

    ``window`` far exceeds what ``m * k`` sweeps consume, so the run has
    ``plan_runs == 1`` — under worker state the snapshot therefore ships
    exactly once and everything after sweep 1 is pure notifications,
    which is what the transport regression pins.
    """
    catalog = Catalog()
    catalog.add_table(Table("means", {
        "CID": np.arange(customers),
        "m": np.linspace(0.8, 3.5, customers)}))
    spec = RandomTableSpec(
        name="Losses", parameter_table="means", vg=NORMAL,
        vg_params=(col("m"), lit(1.0)),
        random_columns=(RandomColumnSpec("val"),),
        passthrough_columns=("CID",))
    params = TailParams(p=p_step ** m, m=m, n_steps=(versions,) * m,
                        p_steps=(p_step,) * m)
    return GibbsLooper(
        random_table_pipeline(spec), catalog, params, num_samples,
        aggregate_kind="sum", aggregate_expr=col("val"),
        window=window, base_seed=base_seed, k=k,
        options=ExecutionOptions(n_jobs=n_jobs, backend=backend_name,
                                 gibbs_state=gibbs_state,
                                 state_reinit=state_reinit,
                                 speculate_followups=speculate_followups),
        backend=backend)


class TestWorkerStateProtocol:
    """init_state / call / cast / scatter / collect / discard round-trips."""

    def test_process_roundtrip_and_ownership(self):
        backend = ProcessBackend(2)
        try:
            # Three shards on two workers: shard 2 shares worker 0.
            token = backend.init_state([
                LedgerState("a", [1, 2]), LedgerState("b", [3]),
                LedgerState("c", [4])])
            assert backend.state_call(token, 0, "total") == ("a", 3)
            assert backend.state_call(token, 2, "total") == ("c", 4)
            backend.state_cast(token, 1, "record", 10, 20)
            assert backend.state_call(token, 1, "total") == ("b", 33)
            backend.state_cast_all(token, "record", 100)
            assert backend.state_call(token, 0, "total") == ("a", 103)
            assert backend.state_call(token, 2, "total") == ("c", 104)
            backend.discard_state(token)
            with pytest.raises(EngineError, match="unknown worker state"):
                backend.state_call(token, 0, "total")
        finally:
            backend.close()

    def test_process_scatter_collects_in_any_order(self):
        """Out-of-order collection across shards co-located on one worker
        must not cross replies (the ticket stash)."""
        backend = ProcessBackend(2)
        try:
            token = backend.init_state([
                LedgerState(str(shard), range(shard, shard + 4))
                for shard in range(4)])
            backend.state_scatter(token, "span",
                                  [(0, 2), (1, 3), (0, 4), (2, 4)])
            assert backend.state_collect(token, 3) == ("3", [5, 6])
            assert backend.state_collect(token, 0) == ("0", [0, 1])
            assert backend.state_collect(token, 2) == ("2", [2, 3, 4, 5])
            assert backend.state_collect(token, 1) == ("1", [2, 3])
        finally:
            backend.close()

    def test_discard_drains_uncollected_scatter_replies(self):
        """A state discarded with replies still in flight must not leak
        them into later traffic (the drain barrier)."""
        backend = ProcessBackend(2)
        try:
            token = backend.init_state([LedgerState("x", [1]),
                                        LedgerState("y", [2])])
            backend.state_scatter(token, "total", [(), ()])
            backend.discard_state(token)  # never collected
            with pytest.raises(EngineError, match="no scattered reply"):
                backend.state_collect(token, 0)
            fresh = backend.init_state([LedgerState("f", [7]),
                                        LedgerState("g", [8])])
            backend.state_scatter(fresh, "total", [(), ()])
            assert backend.state_collect(fresh, 0) == ("f", 7)
            assert backend.state_collect(fresh, 1) == ("g", 8)
        finally:
            backend.close()

    @pytest.mark.parametrize("backend_name", BACKENDS)
    def test_double_scatter_is_a_protocol_error(self, backend_name):
        """Re-scattering over an uncollected reply would orphan it (and
        its stash slot, on the process transport) — every backend must
        refuse, leaving the first reply collectable."""
        backend = _make_backend(backend_name)
        try:
            token = backend.init_state([LedgerState("a", [1])])
            backend.state_scatter(token, "total", [()])
            with pytest.raises(EngineError, match="already has a scattered"):
                backend.state_scatter(token, "total", [()])
            assert backend.state_collect(token, 0) == ("a", 1)
        finally:
            backend.close()

    def test_serial_state_is_a_pickled_mirror(self):
        """The serial backend must mirror, not alias: casts apply to the
        pickled copy and never to the caller's live object — that is
        what makes it the replay reference implementation."""
        payload = LedgerState("m", [1])
        backend = SerialBackend()
        token = backend.init_state([payload])
        backend.state_cast(token, 0, "record", 41)
        assert backend.state_call(token, 0, "total") == ("m", 42)
        assert payload.entries == [1]  # caller's object untouched
        payload.entries.append(999)    # …and mirror blind to caller edits
        assert backend.state_call(token, 0, "total") == ("m", 42)

    def test_state_merge_semantics_per_backend(self):
        """``state_merge`` is a splice verb: the serial mirror applies it
        (the replayable reference), the thread transport must NOT
        re-apply it to the caller's shared objects (the caller's own
        refresh already did), and the process transport accounts its
        bytes as re-init rather than notification traffic."""
        payload = LedgerState("m", [1])
        serial = SerialBackend()
        token = serial.init_state([payload])
        serial.state_merge(token, 0, "record", 10)
        assert serial.state_call(token, 0, "total") == ("m", 11)
        assert payload.entries == [1]  # caller's object untouched

        shared = LedgerState("t", [1])
        thread = ThreadBackend(2)
        try:
            token = thread.init_state([shared])
            shared.record(10)  # the caller's refresh IS the merge
            thread.state_merge(token, 0, "record", 10)
            assert thread.state_call(token, 0, "total") == ("t", 11)
            with pytest.raises(EngineError, match="unknown worker state"):
                thread.state_merge(99, 0, "record", 1)
        finally:
            thread.close()

        process = ProcessBackend(2)
        try:
            token = process.init_state([LedgerState("p", [1])])
            process.state_merge(token, 0, "record", 29)
            assert process.stats["state_merges"] == 1
            assert process.stats["state_merge_bytes"] > 0
            # Merge bytes are re-init traffic, not notifications.
            assert process.stats["state_msg_bytes"] == 0
            assert process.state_call(token, 0, "total") == ("p", 30)
            with pytest.raises(EngineError, match="unknown worker state"):
                process.state_merge(token + 1, 0, "record", 1)
        finally:
            process.close()

    def test_thread_state_is_shared_by_reference(self):
        """The thread backend holds the live object: the caller's own
        mutations are the state, and casts are deliberate no-ops (they
        would double-apply)."""
        payload = LedgerState("t", [1])
        backend = ThreadBackend(2)
        try:
            token = backend.init_state([payload])
            payload.record(41)  # caller applies; cast must not re-apply
            backend.state_cast(token, 0, "record", 41)
            assert backend.state_call(token, 0, "total") == ("t", 42)
            backend.state_scatter(token, "span", [(0, 2)])
            assert backend.state_collect(token, 0) == ("t", [1, 41])
        finally:
            backend.close()


class TestWorkerStateFaults:
    """Fault injection: every failure is a clean EngineError + pool reset."""

    def test_state_error_carries_traceback_and_resets_pool(self):
        backend = ProcessBackend(2)
        try:
            token = backend.init_state([ExplodingState(), ExplodingState()])
            assert backend.state_call(token, 0, "ok") == "fine"
            with pytest.raises(EngineError, match="state op exploded"):
                backend.state_call(token, 1, "boom")
            assert backend.workers_alive == 0  # pool reset, no stale replies
            assert leaked_segments() == []  # reset reaped its segments too
            fresh = backend.init_state([ExplodingState()])  # respawns
            assert backend.state_call(fresh, 0, "ok") == "fine"
        finally:
            backend.close()

    def test_cast_error_surfaces_on_next_reply(self):
        """A failed notification has no reply slot of its own; its error
        must surface on the next synchronous operation instead of being
        silently swallowed (a diverged mirror must never serve)."""
        backend = ProcessBackend(2)
        try:
            token = backend.init_state([ExplodingState()])
            backend.state_cast(token, 0, "boom")
            with pytest.raises(EngineError, match="state op exploded"):
                backend.state_call(token, 0, "ok")
            assert backend.workers_alive == 0
        finally:
            backend.close()

    def test_init_unpickle_failure_carries_worker_traceback(self):
        """The sinit payload rides as a nested blob so a worker-side
        unpickling failure is caught in the worker's handler and comes
        back as a traceback — not a silent worker death."""
        backend = ProcessBackend(2)
        try:
            token = backend.init_state([UnpicklableState()])
            with pytest.raises(EngineError,
                               match="worker-side unpickle exploded"):
                backend.state_call(token, 0, "ok")
            assert backend.workers_alive == 0
        finally:
            backend.close()

    def test_discard_surfaces_drained_cast_error(self):
        """A cast that fails with NO later synchronous operation must not
        vanish: the discard barrier drains its error reply and re-raises
        it — a diverged mirror is never silent, even at query end."""
        backend = ProcessBackend(2)
        try:
            token = backend.init_state([ExplodingState()])
            backend.state_cast(token, 0, "boom")
            with pytest.raises(EngineError, match="state op exploded"):
                backend.discard_state(token)
            assert backend.workers_alive == 0
            fresh = backend.init_state([ExplodingState()])
            assert backend.state_call(fresh, 0, "ok") == "fine"
        finally:
            backend.close()

    def test_worker_killed_mid_call(self):
        backend = ProcessBackend(2)
        try:
            token = backend.init_state([SuicidalState(), SuicidalState()])
            assert backend.state_call(token, 0, "ok") == "alive"
            with pytest.raises(EngineError, match="died"):
                backend.state_call(token, 1, "die")
            assert backend.workers_alive == 0
            # The killed worker can't unmap gracefully, but the parent
            # owns every segment name: the reset must unlink them all.
            assert leaked_segments() == []
            fresh = backend.init_state([SuicidalState()])
            assert backend.state_call(fresh, 0, "ok") == "alive"
        finally:
            backend.close()

    def test_worker_killed_between_calls(self):
        backend = ProcessBackend(2)
        try:
            token = backend.init_state([LedgerState("a", [1]),
                                        LedgerState("b", [2])])
            assert backend.state_call(token, 0, "total") == ("a", 1)
            backend._workers[0].process.terminate()
            backend._workers[0].process.join()
            with pytest.raises(EngineError, match="died"):
                for _ in range(3):  # first send may land in the dead pipe
                    backend.state_call(token, 0, "total")
            assert backend.workers_alive == 0
        finally:
            backend.close()

    def test_state_dies_with_close_and_respawn_is_explicit(self):
        """The respawn-after-close contract: a closed pool's state tokens
        are dead — state calls raise immediately instead of lazily
        spawning workers that never held the state — and only a fresh
        init_state repopulates the respawned pool."""
        backend = ProcessBackend(2)
        try:
            token = backend.init_state([LedgerState("a", [5])])
            assert backend.state_call(token, 0, "total") == ("a", 5)
            backend.close()
            backend.close()  # idempotent
            assert backend.workers_alive == 0
            assert backend.shm_live_segments == 0  # close unlinks everything
            with pytest.raises(EngineError, match="unknown worker state"):
                backend.state_call(token, 0, "total")
            assert backend.workers_alive == 0  # no silent lazy respawn
            fresh = backend.init_state([LedgerState("z", [6])])
            assert backend.state_call(fresh, 0, "total") == ("z", 6)
            assert backend.stats["spawns"] == 4  # 2 original + 2 respawned
        finally:
            backend.close()

    @pytest.mark.parametrize("backend_name", ["serial", "thread"])
    def test_in_process_backends_drop_state_on_close(self, backend_name):
        """The stale-state leak fix: in-process backends must not keep
        payload references alive across close() — a token from before
        the close can never resolve again."""
        backend = _make_backend(backend_name)
        token = backend.init_state([LedgerState("a", [1]),
                                    LedgerState("b", [2])])
        assert backend.state_call(token, 1, "total") == ("b", 2)
        backend.close()
        assert backend._states == {}
        with pytest.raises(EngineError, match="unknown worker state"):
            backend.state_call(token, 0, "total")
        fresh = backend.init_state([LedgerState("c", [3])])
        assert backend.state_call(fresh, 0, "total") == ("c", 3)
        assert fresh != token  # tokens never alias across close()
        backend.close()


class TestWorkerStateQueryFaults:
    """Worker death inside a real sharded tail query, session-level."""

    CREATE = TestDetCacheShardSemantics.CREATE
    TAIL_QUERY = """
        SELECT SUM(val) AS loss FROM Losses WHERE CID < 12
        WITH RESULTDISTRIBUTION MONTECARLO(30)
        DOMAIN loss >= QUANTILE(0.9)
    """

    def _session(self):
        session = Session(base_seed=11, tail_budget=200, window=2000,
                          options=ExecutionOptions(n_jobs=2,
                                                   gibbs_state="worker"))
        session.add_table("means", {
            "CID": np.arange(15), "m": np.linspace(1.0, 3.0, 15)})
        session.execute(self.CREATE)
        return session

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="kill injection relies on fork inheriting the patched class")
    @pytest.mark.parametrize("method", ["serve_windows", "apply_clone"])
    def test_kill_mid_sweep_and_between_sweeps(self, method, monkeypatch):
        """``serve_windows`` dies mid-sweep (inside the scatter), while
        ``apply_clone`` dies between bootstrap steps.  Both must tear the
        pool down into a clean EngineError — no hang — and a fresh query
        on the same session must respawn workers with correct state."""
        from repro.core import gibbs_looper as gl
        with self._session() as healthy:
            expected = healthy.execute(self.TAIL_QUERY)
        with self._session() as session:

            def killer(self, *args):
                os.kill(os.getpid(), signal.SIGKILL)

            # Workers fork at first use, inheriting the patched class.
            monkeypatch.setattr(gl.GibbsSeedShard, method, killer)
            with pytest.raises(EngineError):
                session.execute(self.TAIL_QUERY)
            assert session.backend.workers_alive == 0  # pool torn down
            assert leaked_segments() == []  # ...with its shm segments
            monkeypatch.undo()  # fresh workers fork from healthy code
            recovered = session.execute(self.TAIL_QUERY)
            np.testing.assert_array_equal(recovered.tail.samples,
                                          expected.tail.samples)
            assert recovered.tail.assignments == expected.tail.assignments

    def test_worker_state_never_survives_catalog_bumps(self):
        """Seed state is per-query; a Catalog.version bump between
        queries must meet a fresh init, never a stale mirror."""
        with self._session() as session:
            first = session.execute(self.TAIL_QUERY)
            inits = session.backend.stats["state_inits"]
            assert inits > 0
            session.add_table("extra", {"k": np.arange(3)})  # version bump
            second = session.execute(self.TAIL_QUERY)
            assert session.backend.stats["state_inits"] > inits
            np.testing.assert_array_equal(first.tail.samples,
                                          second.tail.samples)


class TestWorkerStateTransport:
    """Per-sweep bytes under gibbs_state="worker": notifications only.

    The broadcast transport re-pickles the whole tuple/state snapshot
    every sweep; worker-owned state ships it once at init and then sends
    commit notifications a few hundred bytes each.  These tests pin the
    shape (one init, zero job broadcasts, no re-ship after sweep 1); the
    >= 5x per-sweep byte gate on a bigger workload lives in
    ``benchmarks/bench_scaling.py``.
    """

    def test_zero_snapshot_reships_after_sweep_one(self):
        backend = ProcessBackend(2)
        try:
            result = _tail_looper(backend=backend).run()
            stats = backend.stats
            assert result.plan_runs == 1  # workload never replenished
            assert result.followup_windows > 0  # …yet follow-ups served
            assert stats["state_inits"] == 1  # snapshot shipped exactly once
            assert stats["jobs"] == 0  # and never broadcast as a job
            # Everything after sweep 1 is notifications: all four sweeps'
            # messages together stay well under one snapshot ship.
            assert stats["state_msg_bytes"] < stats["state_init_bytes"] / 3
            traffic = stats["state_calls"] + stats["state_casts"]
            assert stats["state_msg_bytes"] / traffic < 4096
        finally:
            backend.close()

    def test_delta_reinit_merges_instead_of_reshipping(self):
        """A replenishing workload under ``state_reinit="delta"`` must
        ship the snapshot exactly once and survive every refuel with a
        ``state_merge`` splice strictly smaller than the snapshot."""
        backend = ProcessBackend(2)
        try:
            result = _tail_looper(backend=backend, window=500,
                                  versions=30, p_step=0.15).run()
            stats = backend.stats
            assert result.plan_runs > 1  # workload really replenished
            assert result.worker_state_inits == 1
            assert result.worker_state_merges == result.plan_runs - 1
            assert result.merged_positions > 0
            assert stats["state_inits"] == 1
            assert stats["state_merges"] >= result.worker_state_merges
            # The whole point: all splices together stay well under the
            # one snapshot ship each of them replaced.
            assert stats["state_merge_bytes"] < stats["state_init_bytes"]
        finally:
            backend.close()

    def test_full_reinit_reships_snapshot_after_each_refuel(self):
        backend = ProcessBackend(2)
        try:
            result = _tail_looper(backend=backend, window=500,
                                  versions=30, p_step=0.15,
                                  state_reinit="full").run()
            assert result.plan_runs > 1
            assert result.worker_state_merges == 0
            assert result.worker_state_inits > 1
            assert backend.stats["state_merges"] == 0
            assert backend.stats["state_inits"] == \
                result.worker_state_inits
        finally:
            backend.close()

    def test_broadcast_reships_every_sweep(self):
        backend = ProcessBackend(2)
        try:
            result = _tail_looper(backend=backend,
                                  gibbs_state="broadcast").run()
            stats = backend.stats
            assert result.plan_runs == 1
            assert stats["jobs"] == 4  # one snapshot job per sweep (m*k)
            assert stats["state_inits"] == 0
        finally:
            backend.close()

    def test_worker_mode_per_sweep_bytes_beat_broadcast(self):
        per_sweep = {}
        for mode in ("worker", "broadcast"):
            backend = ProcessBackend(2)
            try:
                _tail_looper(backend=backend, gibbs_state=mode).run()
                sweeps = 4  # m * k
                bytes_after_init = (backend.stats["sent_bytes"]
                                    - backend.stats["state_init_bytes"])
                per_sweep[mode] = bytes_after_init / sweeps
            finally:
                backend.close()
        assert per_sweep["broadcast"] >= 5 * per_sweep["worker"]
