"""Packaging for the MCDB-R reproduction (src layout, stdlib+numpy)."""
from setuptools import find_packages, setup

setup(
    name="mcdbr-repro",
    version="0.9.0",
    description="Reproduction of MCDB-R: risk analysis in the database "
                "(VLDB 2010), with a multi-tenant risk query service",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "repro-risk-server = repro.server.cli:main",
        ],
    },
)
